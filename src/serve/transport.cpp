#include "serve/transport.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

#include <atomic>

namespace limsynth::serve {

const char* tx_err_name(TxErr err) {
  switch (err) {
    case TxErr::kNone: return "none";
    case TxErr::kEof: return "eof";
    case TxErr::kTimeout: return "timeout";
    case TxErr::kReset: return "reset";
    case TxErr::kOther: return "other";
  }
  return "other";
}

std::string Endpoint::str() const {
  if (!socket_path.empty()) return "unix:" + socket_path;
  return "tcp:127.0.0.1:" + std::to_string(port);
}

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Waits for readability/writability. Returns true when the fd is ready,
/// false on timeout or poll error.
bool wait_fd(int fd, short events, int timeout_ms) {
  struct pollfd pfd {};
  pfd.fd = fd;
  pfd.events = events;
  const int rc = ::poll(&pfd, 1, timeout_ms < 0 ? 0 : timeout_ms);
  return rc > 0;
}

/// POSIX socket connection. All waits are poll()-bounded; writes use
/// MSG_NOSIGNAL so a vanished peer is a kReset result, never SIGPIPE.
class SocketConn : public Conn {
 public:
  explicit SocketConn(int fd) : fd_(fd) { set_nonblocking(fd_); }
  ~SocketConn() override { close(); }

  TxResult read_some(char* buf, std::size_t max, int timeout_ms) override {
    if (fd_ < 0 || max == 0) return TxResult::fail(TxErr::kOther);
    for (;;) {
      const ssize_t n = ::recv(fd_, buf, max, 0);
      if (n > 0) return TxResult::good(static_cast<std::size_t>(n));
      if (n == 0) return TxResult::fail(TxErr::kEof);
      if (errno == ECONNRESET) return TxResult::fail(TxErr::kReset);
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK)
        return TxResult::fail(TxErr::kOther);
      if (!wait_fd(fd_, POLLIN, timeout_ms))
        return TxResult::fail(TxErr::kTimeout);
    }
  }

  TxResult write_some(const char* buf, std::size_t n, int timeout_ms) override {
    if (fd_ < 0 || n == 0) return TxResult::fail(TxErr::kOther);
    for (;;) {
      const ssize_t w = ::send(fd_, buf, n, MSG_NOSIGNAL);
      if (w > 0) return TxResult::good(static_cast<std::size_t>(w));
      if (errno == EPIPE || errno == ECONNRESET)
        return TxResult::fail(TxErr::kReset);
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK)
        return TxResult::fail(TxErr::kOther);
      if (!wait_fd(fd_, POLLOUT, timeout_ms))
        return TxResult::fail(TxErr::kTimeout);
    }
  }

  void close() override {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
};

class SocketListener : public Listener {
 public:
  SocketListener(int fd, std::string address, std::string unlink_path)
      : fd_(fd),
        address_(std::move(address)),
        unlink_path_(std::move(unlink_path)) {
    set_nonblocking(fd_);
  }

  ~SocketListener() override {
    close();
    if (fd_ >= 0) ::close(fd_);
    if (!unlink_path_.empty()) ::unlink(unlink_path_.c_str());
  }

  std::unique_ptr<Conn> accept(int timeout_ms) override {
    if (closed_.load(std::memory_order_acquire)) return nullptr;
    for (;;) {
      const int cfd = ::accept(fd_, nullptr, nullptr);
      if (cfd >= 0) return std::make_unique<SocketConn>(cfd);
      if (closed_.load(std::memory_order_acquire)) return nullptr;
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) return nullptr;
      if (!wait_fd(fd_, POLLIN, timeout_ms)) return nullptr;
      if (closed_.load(std::memory_order_acquire)) return nullptr;
    }
  }

  void close() override {
    if (closed_.exchange(true, std::memory_order_acq_rel)) return;
    // shutdown() (not close()) wakes a concurrent accept() without the
    // fd-reuse race; the fd itself is released in the destructor.
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  }

  std::string address() const override { return address_; }

 private:
  int fd_ = -1;
  std::string address_;
  std::string unlink_path_;
  std::atomic<bool> closed_{false};
};

class PosixTransport : public Transport {
 public:
  std::unique_ptr<Listener> listen(const Endpoint& ep,
                                   std::string* error) override {
    if (!ep.socket_path.empty()) return listen_unix(ep.socket_path, error);
    return listen_tcp(ep.port, error);
  }

  std::unique_ptr<Conn> connect(const Endpoint& ep, int timeout_ms) override {
    if (!ep.socket_path.empty()) {
      struct sockaddr_un addr {};
      if (ep.socket_path.size() >= sizeof(addr.sun_path)) return nullptr;
      addr.sun_family = AF_UNIX;
      std::strncpy(addr.sun_path, ep.socket_path.c_str(),
                   sizeof(addr.sun_path) - 1);
      return connect_fd(AF_UNIX, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr), timeout_ms);
    }
    struct sockaddr_in addr {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(ep.port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return connect_fd(AF_INET, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr), timeout_ms);
  }

 private:
  static void set_error(std::string* error, const std::string& what) {
    if (error) *error = what + ": " + std::strerror(errno);
  }

  std::unique_ptr<Listener> listen_unix(const std::string& path,
                                        std::string* error) {
    struct sockaddr_un addr {};
    if (path.size() >= sizeof(addr.sun_path)) {
      if (error) *error = "socket path too long: " + path;
      return nullptr;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      set_error(error, "socket");
      return nullptr;
    }
    ::unlink(path.c_str());  // a stale socket file from a killed server
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 64) != 0) {
      set_error(error, "bind/listen " + path);
      ::close(fd);
      return nullptr;
    }
    return std::make_unique<SocketListener>(fd, "unix:" + path, path);
  }

  std::unique_ptr<Listener> listen_tcp(int port, std::string* error) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      set_error(error, "socket");
      return nullptr;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct sockaddr_in addr {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 64) != 0) {
      set_error(error, "bind/listen port " + std::to_string(port));
      ::close(fd);
      return nullptr;
    }
    // Report the kernel-chosen port for port 0 (tests bind ephemeral).
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    const int bound = ntohs(addr.sin_port);
    return std::make_unique<SocketListener>(
        fd, "tcp:127.0.0.1:" + std::to_string(bound), "");
  }

  std::unique_ptr<Conn> connect_fd(int family, sockaddr* addr, socklen_t len,
                                   int timeout_ms) {
    const int fd = ::socket(family, SOCK_STREAM, 0);
    if (fd < 0) return nullptr;
    set_nonblocking(fd);
    if (::connect(fd, addr, len) != 0) {
      if (errno != EINPROGRESS && errno != EAGAIN) {
        ::close(fd);
        return nullptr;
      }
      if (!wait_fd(fd, POLLOUT, timeout_ms)) {
        ::close(fd);
        return nullptr;
      }
      int soerr = 0;
      socklen_t slen = sizeof(soerr);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &slen) != 0 ||
          soerr != 0) {
        ::close(fd);
        return nullptr;
      }
    }
    return std::make_unique<SocketConn>(fd);
  }
};

}  // namespace

Transport& Transport::real() {
  static PosixTransport t;
  return t;
}

TxResult FaultConn::read_some(char* buf, std::size_t max, int timeout_ms) {
  ++reads;
  if (delay_each_read_ms > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_each_read_ms));
  if (timeout_reads > 0) {
    --timeout_reads;
    return TxResult::fail(TxErr::kTimeout);
  }
  if (reset_read_after >= 0 && bytes_read_ >= reset_read_after)
    return TxResult::fail(TxErr::kReset);
  std::size_t cap = max;
  if (max_chunk > 0 && cap > max_chunk) cap = max_chunk;
  if (reset_read_after >= 0) {
    const long room = reset_read_after - bytes_read_;
    if (room > 0 && cap > static_cast<std::size_t>(room))
      cap = static_cast<std::size_t>(room);
  }
  const TxResult r = base_->read_some(buf, cap, timeout_ms);
  if (r.ok()) bytes_read_ += static_cast<long>(r.bytes);
  return r;
}

TxResult FaultConn::write_some(const char* buf, std::size_t n,
                               int timeout_ms) {
  ++writes;
  if (write_broken_) return TxResult::fail(TxErr::kReset);
  if (reset_write_after >= 0 && bytes_written_ >= reset_write_after)
    return TxResult::fail(TxErr::kReset);
  std::size_t cap = n;
  if (max_chunk > 0 && cap > max_chunk) cap = max_chunk;
  if (torn_write_bytes >= 0) {
    // Deliver the allowed prefix (across as many calls as it takes), then
    // break the connection for good.
    if (torn_write_bytes == 0) {
      write_broken_ = true;
      return TxResult::fail(TxErr::kReset);
    }
    if (cap > static_cast<std::size_t>(torn_write_bytes))
      cap = static_cast<std::size_t>(torn_write_bytes);
    const TxResult r = base_->write_some(buf, cap, timeout_ms);
    if (r.ok()) {
      torn_write_bytes -= static_cast<long>(r.bytes);
      bytes_written_ += static_cast<long>(r.bytes);
    }
    return r;
  }
  if (reset_write_after >= 0) {
    const long room = reset_write_after - bytes_written_;
    if (room > 0 && cap > static_cast<std::size_t>(room))
      cap = static_cast<std::size_t>(room);
  }
  const TxResult r = base_->write_some(buf, cap, timeout_ms);
  if (r.ok()) bytes_written_ += static_cast<long>(r.bytes);
  return r;
}

}  // namespace limsynth::serve
