// Request execution for the characterization daemon.
//
// One entry point turns a decoded Request into a reply payload, with the
// PR-2 failure model applied per request instead of per process: every
// limsynth::Error thrown anywhere under the op (bad shapes, numerics,
// exhausted watchdog budgets) is caught and returned as a typed error
// reply carrying the taxonomy code — the connection and the process
// always survive. Deadlines reuse the existing Watchdog machinery,
// checked at stage boundaries exactly like the batch flows do.
//
// A `batch` request runs many items under ONE watchdog with per-item
// error isolation: each item goes through the same run-item pipeline an
// individual request uses (same functions, same reply writer), so a
// batched result is byte-identical to the one-frame-per-request result
// — including the typed per-item error a poisoned or malformed item
// yields. One sick item costs one line of the results, never the batch.
//
// When HandlerContext::breaker is set, every item consults the
// poison-request circuit breaker first: a fingerprint that repeatedly
// died (watchdog kill / handler fault) is refused with a typed
// `quarantined` reply instead of being re-executed, and every execution
// outcome feeds back into the breaker.
//
// The handler runs against resident state: the process/StdCellLib pair
// built once at server start and the process-wide two-tier BrickCache
// (in-memory + optional on-disk store), which is what makes repeated
// characterization queries fast — the MemSPICE split served over a
// socket.
#pragma once

#include <atomic>
#include <string>

#include "serve/codec.hpp"
#include "serve/sched.hpp"
#include "tech/process.hpp"
#include "tech/stdcell.hpp"

namespace limsynth::serve {

struct HandlerContext {
  const tech::Process* process = nullptr;
  const tech::StdCellLib* cells = nullptr;
  /// Hard per-request compute budget; per-request deadline_ms overrides
  /// downward only.
  double max_deadline_seconds = 30.0;
  /// Drain flag: long-running ops poll it and fail with kInterrupted so
  /// a SIGTERM drain is bounded by one stage, not one request.
  const std::atomic<bool>* cancel = nullptr;
  /// Optional poison-request circuit breaker (owned by the server).
  PoisonBreaker* breaker = nullptr;
};

/// A handled request: the reply payload plus the classification the
/// server's stats need (every path produces a valid reply).
struct Handled {
  std::string payload;
  bool ok = true;
  ErrorCode code = ErrorCode::kInternal;  ///< meaningful when !ok
  int quarantined = 0;   ///< breaker refusals (the request or its items)
  int batch_items = 0;   ///< items carried when op == kBatch
  int batch_failed = 0;  ///< items that yielded a typed error
};

/// Executes one request. Never throws.
Handled handle_request(const Request& req, const HandlerContext& ctx);

}  // namespace limsynth::serve
