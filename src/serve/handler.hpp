// Request execution for the characterization daemon.
//
// One entry point turns a decoded Request into a reply payload, with the
// PR-2 failure model applied per request instead of per process: every
// limsynth::Error thrown anywhere under the op (bad shapes, numerics,
// exhausted watchdog budgets) is caught and returned as a typed error
// reply carrying the taxonomy code — the connection and the process
// always survive. Deadlines reuse the existing Watchdog machinery,
// checked at stage boundaries exactly like the batch flows do.
//
// The handler runs against resident state: the process/StdCellLib pair
// built once at server start and the process-wide two-tier BrickCache
// (in-memory + optional on-disk store), which is what makes repeated
// characterization queries fast — the MemSPICE split served over a
// socket.
#pragma once

#include <atomic>
#include <string>

#include "serve/codec.hpp"
#include "tech/process.hpp"
#include "tech/stdcell.hpp"

namespace limsynth::serve {

struct HandlerContext {
  const tech::Process* process = nullptr;
  const tech::StdCellLib* cells = nullptr;
  /// Hard per-request compute budget; per-request deadline_ms overrides
  /// downward only.
  double max_deadline_seconds = 30.0;
  /// Drain flag: long-running ops poll it and fail with kInterrupted so
  /// a SIGTERM drain is bounded by one stage, not one request.
  const std::atomic<bool>* cancel = nullptr;
};

/// A handled request: the reply payload plus the classification the
/// server's stats need (every path produces a valid reply).
struct Handled {
  std::string payload;
  bool ok = true;
  ErrorCode code = ErrorCode::kInternal;  ///< meaningful when !ok
};

/// Executes one request. Never throws.
Handled handle_request(const Request& req, const HandlerContext& ctx);

}  // namespace limsynth::serve
