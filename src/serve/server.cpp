#include "serve/server.hpp"

#include <thread>
#include <vector>

#include "brick/cache.hpp"
#include "brick/store.hpp"
#include "serve/framing.hpp"

namespace limsynth::serve {

Server::Server(Listener& listener, const HandlerContext& ctx,
               const ServeOptions& options)
    : listener_(listener), ctx_(ctx), opt_(options) {
  // The handler's drain flag is the server's, so in-flight long ops stop
  // at their next stage boundary once the drain begins.
  ctx_.cancel = &draining_;
  if (ctx_.max_deadline_seconds <= 0.0 ||
      ctx_.max_deadline_seconds > opt_.request_deadline_seconds)
    ctx_.max_deadline_seconds = opt_.request_deadline_seconds;
}

ServeStats Server::stats() const {
  ServeStats s;
  s.accepted = n_.accepted.load();
  s.shed = n_.shed.load();
  s.closed = n_.closed.load();
  s.drained = n_.drained.load();
  s.requests = n_.requests.load();
  s.replies_ok = n_.replies_ok.load();
  s.replies_error = n_.replies_error.load();
  s.deadline_exceeded = n_.deadline_exceeded.load();
  s.protocol_errors = n_.protocol_errors.load();
  s.disconnects = n_.disconnects.load();
  s.slow_loris = n_.slow_loris.load();
  s.idle_closed = n_.idle_closed.load();
  return s;
}

std::string Server::stats_reply(const std::string& id) const {
  const ServeStats s = stats();
  JsonWriter w;
  w.add("id", id).add("ok", true);
  w.add("op", std::string("stats"));
  w.add("accepted", s.accepted).add("shed", s.shed).add("closed", s.closed);
  w.add("requests", s.requests);
  w.add("replies_ok", s.replies_ok).add("replies_error", s.replies_error);
  w.add("deadline_exceeded", s.deadline_exceeded);
  w.add("protocol_errors", s.protocol_errors);
  w.add("disconnects", s.disconnects).add("slow_loris", s.slow_loris);
  w.add("idle_closed", s.idle_closed);
  const brick::BrickCache& cache = brick::BrickCache::global();
  w.add("cache_entries", static_cast<std::uint64_t>(cache.size()));
  w.add("cache_hits", cache.hits()).add("cache_misses", cache.misses());
  w.add("disk_hits", cache.disk_hits());
  if (const auto store = brick::BrickCache::global().store()) {
    const brick::StoreStats ss = store->stats();
    w.add("store_saves", ss.saves).add("store_quarantined", ss.quarantined);
    w.add("store_writes_disabled", ss.writes_disabled);
  }
  return w.str();
}

std::string Server::dispatch(const std::string& payload) {
  n_.requests.fetch_add(1);
  Request req;
  std::string parse_error;
  if (!parse_request(payload, &req, &parse_error)) {
    n_.replies_error.fetch_add(1);
    n_.protocol_errors.fetch_add(1);
    return make_error_reply("", ErrorCode::kInvalidConfig,
                            "malformed request: " + parse_error);
  }
  if (req.op == Op::kStats) {
    n_.replies_ok.fetch_add(1);
    return stats_reply(req.id);
  }
  const Handled h = handle_request(req, ctx_);
  if (h.ok) {
    n_.replies_ok.fetch_add(1);
  } else {
    n_.replies_error.fetch_add(1);
    if (h.code == ErrorCode::kResourceExhausted)
      n_.deadline_exceeded.fetch_add(1);
  }
  return h.payload;
}

void Server::serve_connection(std::unique_ptr<Conn> conn) {
  FrameReader reader(opt_.max_frame_bytes);
  int idle_spent_ms = 0;
  for (;;) {
    if (draining() && !reader.mid_frame()) {
      // Between requests at drain time: nothing in flight here. (A
      // half-received frame is also not in-flight work — it can never
      // complete once we stop waiting — so it falls through to close
      // via the slices below only if it finishes in time.)
      break;
    }
    std::string payload;
    const int slice = opt_.accept_poll_ms;
    const FrameStatus st =
        reader.poll(*conn, slice, opt_.frame_timeout_ms, &payload);
    switch (st) {
      case FrameStatus::kFrame: {
        idle_spent_ms = 0;
        const std::string reply = dispatch(payload);
        if (write_frame(*conn, reply, opt_.write_timeout_ms) !=
            TxErr::kNone) {
          n_.disconnects.fetch_add(1);
          goto done;
        }
        break;
      }
      case FrameStatus::kNeedMore:
        if (!reader.mid_frame()) {
          idle_spent_ms += slice;
          if (idle_spent_ms >= opt_.idle_timeout_ms) {
            n_.idle_closed.fetch_add(1);
            goto done;
          }
        }
        break;
      case FrameStatus::kEof:
        goto done;  // orderly close between frames
      case FrameStatus::kTorn:
      case FrameStatus::kReset:
        n_.disconnects.fetch_add(1);
        goto done;
      case FrameStatus::kSlowLoris:
        n_.slow_loris.fetch_add(1);
        // Best effort: tell the client why before hanging up.
        write_frame(*conn,
                    make_error_reply("", ErrorCode::kResourceExhausted,
                                     "frame assembly exceeded " +
                                         std::to_string(opt_.frame_timeout_ms) +
                                         " ms"),
                    opt_.write_timeout_ms);
        goto done;
      case FrameStatus::kOversized:
        n_.protocol_errors.fetch_add(1);
        write_frame(*conn,
                    make_error_reply("", ErrorCode::kInvalidConfig,
                                     "frame exceeds " +
                                         std::to_string(opt_.max_frame_bytes) +
                                         " bytes"),
                    opt_.write_timeout_ms);
        goto done;  // framing may be unsynchronized; do not continue
      case FrameStatus::kOther:
        n_.protocol_errors.fetch_add(1);
        goto done;
    }
  }
done:
  conn->close();
  n_.closed.fetch_add(1);
}

void Server::worker_loop() {
  for (;;) {
    std::unique_ptr<Conn> conn;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return !queue_.empty() || draining(); });
      if (queue_.empty()) return;  // draining and nothing left
      conn = std::move(queue_.front());
      queue_.pop_front();
    }
    serve_connection(std::move(conn));
  }
}

void Server::run() {
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(opt_.workers));
  for (int i = 0; i < opt_.workers; ++i)
    workers.emplace_back([this] { worker_loop(); });

  // Acceptor loop (this thread). Shedding happens here: a full queue
  // means every worker is busy and the backlog is at capacity, so the
  // client gets an immediate typed refusal instead of an unbounded wait.
  while (!(opt_.shutdown != nullptr &&
           opt_.shutdown->load(std::memory_order_relaxed))) {
    std::unique_ptr<Conn> conn = listener_.accept(opt_.accept_poll_ms);
    if (!conn) continue;
    if (opt_.conn_filter) conn = opt_.conn_filter(std::move(conn));
    n_.accepted.fetch_add(1);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (static_cast<int>(queue_.size()) < opt_.queue_depth) {
        queue_.push_back(std::move(conn));
        cv_.notify_one();
        continue;
      }
    }
    // Saturated: shed with a retry hint. The write gets a short timeout
    // so a non-reading client cannot stall the acceptor.
    write_frame(*conn, make_shed_reply(opt_.retry_after_ms),
                opt_.write_timeout_ms);
    conn->close();
    n_.shed.fetch_add(1);
  }

  // ---- graceful drain -------------------------------------------------
  listener_.close();  // stop accepting
  // Queued-but-unserved connections have no request in flight: answer
  // each with a shed reply (retry elsewhere/later) and close.
  std::deque<std::unique_ptr<Conn>> leftover;
  {
    std::lock_guard<std::mutex> lk(mu_);
    leftover.swap(queue_);
  }
  for (auto& conn : leftover) {
    write_frame(*conn, make_shed_reply(opt_.retry_after_ms),
                opt_.write_timeout_ms);
    conn->close();
    n_.drained.fetch_add(1);
    n_.closed.fetch_add(1);
  }
  // In-flight requests finish or deadline out; workers then notice the
  // drain flag and exit.
  draining_.store(true, std::memory_order_release);
  cv_.notify_all();
  for (auto& t : workers) t.join();
}

}  // namespace limsynth::serve
