#include "serve/server.hpp"

#include <chrono>
#include <thread>

#include "brick/cache.hpp"
#include "brick/store.hpp"
#include "serve/framing.hpp"

namespace limsynth::serve {

Server::Server(Listener& listener, const HandlerContext& ctx,
               const ServeOptions& options)
    : listener_(listener),
      ctx_(ctx),
      opt_(options),
      breaker_(options.poison_threshold) {
  // The handler's drain flag is the server's, so in-flight long ops stop
  // at their next stage boundary once the drain begins.
  ctx_.cancel = &draining_;
  ctx_.breaker = &breaker_;
  if (ctx_.max_deadline_seconds <= 0.0 ||
      ctx_.max_deadline_seconds > opt_.request_deadline_seconds)
    ctx_.max_deadline_seconds = opt_.request_deadline_seconds;
  Scheduler::Options sopt;
  sopt.workers = opt_.workers;
  sopt.default_quota = {opt_.quota_rps, opt_.quota_burst};
  sopt.quota_overrides = opt_.quota_overrides;
  sopt.retry_after_ms = opt_.retry_after_ms;
  sched_ = std::make_unique<Scheduler>(sopt);
}

ServeStats Server::stats() const {
  ServeStats s;
  s.accepted = n_.accepted.load();
  s.shed = n_.shed.load();
  s.closed = n_.closed.load();
  s.drained = n_.drained.load();
  s.requests = n_.requests.load();
  s.replies_ok = n_.replies_ok.load();
  s.replies_error = n_.replies_error.load();
  s.deadline_exceeded = n_.deadline_exceeded.load();
  s.quota_shed = n_.quota_shed.load();
  s.deadline_rejected = n_.deadline_rejected.load();
  s.quarantined = n_.quarantined.load();
  s.batches = n_.batches.load();
  s.batch_items = n_.batch_items.load();
  s.protocol_errors = n_.protocol_errors.load();
  s.disconnects = n_.disconnects.load();
  s.slow_loris = n_.slow_loris.load();
  s.idle_closed = n_.idle_closed.load();
  return s;
}

std::vector<ClientStatsRow> Server::client_stats() const {
  return sched_->client_stats();
}

std::string Server::stats_reply(const std::string& id) const {
  const ServeStats s = stats();
  JsonWriter w;
  w.add("id", id).add("ok", true);
  w.add("op", std::string("stats"));
  w.add("accepted", s.accepted).add("shed", s.shed).add("closed", s.closed);
  w.add("requests", s.requests);
  w.add("replies_ok", s.replies_ok).add("replies_error", s.replies_error);
  w.add("deadline_exceeded", s.deadline_exceeded);
  w.add("quota_shed", s.quota_shed);
  w.add("deadline_rejected", s.deadline_rejected);
  w.add("quarantined", s.quarantined);
  w.add("quarantined_fingerprints", breaker_.quarantined_fingerprints());
  w.add("batches", s.batches).add("batch_items", s.batch_items);
  w.add("backlog", static_cast<std::uint64_t>(sched_->backlog()));
  w.add("protocol_errors", s.protocol_errors);
  w.add("disconnects", s.disconnects).add("slow_loris", s.slow_loris);
  w.add("idle_closed", s.idle_closed);
  const brick::BrickCache& cache = brick::BrickCache::global();
  w.add("cache_entries", static_cast<std::uint64_t>(cache.size()));
  w.add("cache_hits", cache.hits()).add("cache_misses", cache.misses());
  w.add("disk_hits", cache.disk_hits());
  if (const auto store = brick::BrickCache::global().store()) {
    const brick::StoreStats ss = store->stats();
    w.add("store_saves", ss.saves).add("store_quarantined", ss.quarantined);
    w.add("store_writes_disabled", ss.writes_disabled);
  }
  // Per-tenant rows, flat-jsonl style: one key per counter. Conservation
  // (accepted == served + shed) is checkable from the reply alone.
  const std::vector<ClientStatsRow> rows = sched_->client_stats();
  w.add("clients", static_cast<std::uint64_t>(rows.size()));
  for (const ClientStatsRow& r : rows) {
    const std::string p = "client." + r.id + ".";
    w.add(p + "accepted", r.n.accepted);
    w.add(p + "served", r.n.served());
    w.add(p + "shed", r.n.shed());
    w.add(p + "quarantined", r.n.quarantined);
  }
  return w.str();
}

std::string Server::dispatch(const std::string& payload,
                             const std::string& conn_client) {
  n_.requests.fetch_add(1);
  Request req;
  std::string parse_error;
  if (!parse_request(payload, &req, &parse_error)) {
    n_.replies_error.fetch_add(1);
    n_.protocol_errors.fetch_add(1);
    sched_->note_inline(conn_client, false);
    return make_error_reply("", ErrorCode::kInvalidConfig,
                            "malformed request: " + parse_error);
  }
  // Tenant identity: explicit client_id, else this connection is its own
  // anonymous tenant.
  const std::string& client =
      req.client_id.empty() ? conn_client : req.client_id;
  if (req.op == Op::kStats) {
    // Answered inline (the session owns no worker): counted first so the
    // reply's own row already includes it.
    sched_->note_inline(client, true);
    n_.replies_ok.fetch_add(1);
    return stats_reply(req.id);
  }

  Admission adm = sched_->submit(req, client);
  switch (adm.verdict) {
    case Admission::Verdict::kShedQuota:
      n_.replies_error.fetch_add(1);
      n_.quota_shed.fetch_add(1);
      return make_quota_shed_reply(req.id, adm.retry_after_ms);
    case Admission::Verdict::kShedDeadline:
      n_.replies_error.fetch_add(1);
      n_.deadline_rejected.fetch_add(1);
      return make_deadline_reject_reply(req.id, adm.estimated_wait_ms,
                                        req.deadline_ms);
    case Admission::Verdict::kShedDrain:
      n_.replies_error.fetch_add(1);
      n_.drained.fetch_add(1);
      return make_drain_shed_reply(req.id, adm.retry_after_ms);
    case Admission::Verdict::kAdmitted:
      break;
  }
  // Window-of-1 per connection: the session blocks here, so there is
  // exactly one writer per conn and replies can never interleave.
  return adm.item->wait();
}

void Server::executor_loop() {
  for (;;) {
    std::shared_ptr<WorkItem> item = sched_->pop();
    if (!item) return;  // drained and empty
    const auto t0 = std::chrono::steady_clock::now();
    const Handled h = handle_request(item->req, ctx_);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    sched_->record_service(*item, h.ok, seconds, h.quarantined > 0);
    if (h.ok) {
      n_.replies_ok.fetch_add(1);
    } else {
      n_.replies_error.fetch_add(1);
      if (h.code == ErrorCode::kResourceExhausted)
        n_.deadline_exceeded.fetch_add(1);
    }
    if (h.quarantined > 0)
      n_.quarantined.fetch_add(static_cast<std::uint64_t>(h.quarantined));
    if (item->req.op == Op::kBatch) {
      n_.batches.fetch_add(1);
      n_.batch_items.fetch_add(static_cast<std::uint64_t>(h.batch_items));
    }
    item->fulfill(h.payload, h.ok, h.code);
  }
}

void Server::serve_connection(std::unique_ptr<Conn> conn,
                              const std::string& conn_client) {
  FrameReader reader(opt_.max_frame_bytes);
  int idle_spent_ms = 0;
  for (;;) {
    if (draining() && !reader.mid_frame()) {
      // Between requests at drain time: nothing in flight here. (A
      // half-received frame is also not in-flight work — it can never
      // complete once we stop waiting — so it falls through to close
      // via the slices below only if it finishes in time.)
      break;
    }
    std::string payload;
    const int slice = opt_.accept_poll_ms;
    const FrameStatus st =
        reader.poll(*conn, slice, opt_.frame_timeout_ms, &payload);
    switch (st) {
      case FrameStatus::kFrame: {
        idle_spent_ms = 0;
        const std::string reply = dispatch(payload, conn_client);
        if (write_frame(*conn, reply, opt_.write_timeout_ms) !=
            TxErr::kNone) {
          n_.disconnects.fetch_add(1);
          goto done;
        }
        break;
      }
      case FrameStatus::kNeedMore:
        if (!reader.mid_frame()) {
          idle_spent_ms += slice;
          if (idle_spent_ms >= opt_.idle_timeout_ms) {
            n_.idle_closed.fetch_add(1);
            goto done;
          }
        }
        break;
      case FrameStatus::kEof:
        goto done;  // orderly close between frames
      case FrameStatus::kTorn:
      case FrameStatus::kReset:
        n_.disconnects.fetch_add(1);
        goto done;
      case FrameStatus::kSlowLoris:
        n_.slow_loris.fetch_add(1);
        // Best effort: tell the client why before hanging up.
        write_frame(*conn,
                    make_error_reply("", ErrorCode::kResourceExhausted,
                                     "frame assembly exceeded " +
                                         std::to_string(opt_.frame_timeout_ms) +
                                         " ms"),
                    opt_.write_timeout_ms);
        goto done;
      case FrameStatus::kOversized:
        n_.protocol_errors.fetch_add(1);
        write_frame(*conn,
                    make_error_reply("", ErrorCode::kInvalidConfig,
                                     "frame exceeds " +
                                         std::to_string(opt_.max_frame_bytes) +
                                         " bytes"),
                    opt_.write_timeout_ms);
        goto done;  // framing may be unsynchronized; do not continue
      case FrameStatus::kOther:
        n_.protocol_errors.fetch_add(1);
        goto done;
    }
  }
done:
  conn->close();
  n_.closed.fetch_add(1);
}

void Server::session_loop() {
  for (;;) {
    std::unique_ptr<Conn> conn;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return !conn_queue_.empty() || draining(); });
      if (conn_queue_.empty()) return;  // draining and nothing left
      conn = std::move(conn_queue_.front());
      conn_queue_.pop_front();
      busy_sessions_ += 1;
    }
    const std::uint64_t seq = conn_seq_.fetch_add(1) + 1;
    serve_connection(std::move(conn), "conn-" + std::to_string(seq));
    {
      std::lock_guard<std::mutex> lk(mu_);
      busy_sessions_ -= 1;
    }
  }
}

void Server::run() {
  std::vector<std::thread> executors;
  executors.reserve(static_cast<std::size_t>(opt_.workers));
  for (int i = 0; i < opt_.workers; ++i)
    executors.emplace_back([this] { executor_loop(); });
  std::vector<std::thread> sessions;
  sessions.reserve(static_cast<std::size_t>(session_count()));
  for (int i = 0; i < session_count(); ++i)
    sessions.emplace_back([this] { session_loop(); });

  // Acceptor loop (this thread). Connection-level shedding happens here:
  // when every session slot is spoken for the client gets an immediate
  // typed refusal instead of an unbounded wait. (Request-level shedding
  // — quotas, deadlines — happens later, inside the sessions.)
  while (!(opt_.shutdown != nullptr &&
           opt_.shutdown->load(std::memory_order_relaxed))) {
    std::unique_ptr<Conn> conn = listener_.accept(opt_.accept_poll_ms);
    if (!conn) continue;
    if (opt_.conn_filter) conn = opt_.conn_filter(std::move(conn));
    n_.accepted.fetch_add(1);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (busy_sessions_ + static_cast<int>(conn_queue_.size()) <
          session_count()) {
        conn_queue_.push_back(std::move(conn));
        cv_.notify_one();
        continue;
      }
    }
    // Saturated: shed with a retry hint. The write gets a short timeout
    // so a non-reading client cannot stall the acceptor.
    write_frame(*conn, make_shed_reply(opt_.retry_after_ms),
                opt_.write_timeout_ms);
    conn->close();
    n_.shed.fetch_add(1);
  }

  // ---- graceful drain -------------------------------------------------
  listener_.close();  // stop accepting
  // Connections still waiting for a session have no request in flight:
  // answer each with a shed reply (retry elsewhere/later) and close.
  // Swept BEFORE the drain flag flips — a session that grabbed one
  // afterwards would close it replyless.
  std::deque<std::unique_ptr<Conn>> leftover;
  {
    std::lock_guard<std::mutex> lk(mu_);
    leftover.swap(conn_queue_);
  }
  for (auto& conn : leftover) {
    write_frame(*conn, make_shed_reply(opt_.retry_after_ms),
                opt_.write_timeout_ms);
    conn->close();
    n_.drained.fetch_add(1);
    n_.closed.fetch_add(1);
  }
  // Sweep the scheduler BEFORE flipping the cancel flag: queued requests
  // get typed drain replies (their sessions wake from wait() and write
  // them) while the executors are still pinned on in-flight work — flag
  // first, and an executor freed by the cancel could pop a queued item
  // and answer it `interrupted` instead of shed.
  n_.drained.fetch_add(sched_->drain());
  // Now flip the flag: sessions stop reading at the next request
  // boundary, in-flight handlers stop at their next stage boundary, and
  // executors exit once the drained scheduler runs empty.
  draining_.store(true, std::memory_order_release);
  cv_.notify_all();
  for (auto& t : sessions) t.join();
  for (auto& t : executors) t.join();
}

}  // namespace limsynth::serve
