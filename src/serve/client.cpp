#include "serve/client.hpp"

namespace limsynth::serve {

Client::Client(Transport& transport, const Endpoint& ep, int timeout_ms)
    : conn_(transport.connect(ep, timeout_ms)) {}

CallResult Client::call(const std::string& request_json, int timeout_ms) {
  CallResult res;
  if (!conn_) return res;
  res.write_err = write_frame(*conn_, request_json, timeout_ms);
  if (res.write_err != TxErr::kNone) return res;
  const FrameStatus st =
      reader_.poll(*conn_, timeout_ms, timeout_ms, &res.payload);
  res.read_status = st;
  if (st != FrameStatus::kFrame) return res;
  res.transport_ok = true;
  res.reply_parsed = parse_reply(res.payload, &res.fields);
  return res;
}

void Client::close() {
  if (conn_) conn_->close();
  conn_.reset();
}

}  // namespace limsynth::serve
