#include "serve/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace limsynth::serve {

Client::Client(Transport& transport, const Endpoint& ep, int timeout_ms)
    : transport_(&transport),
      ep_(ep),
      connect_timeout_ms_(timeout_ms),
      conn_(transport.connect(ep, timeout_ms)) {}

void Client::reconnect() {
  if (conn_) conn_->close();
  conn_ = transport_->connect(ep_, connect_timeout_ms_);
  reader_ = FrameReader(1 << 20);  // discard any stale partial frame
}

CallResult Client::call(const std::string& request_json, int timeout_ms) {
  CallResult res;
  if (!conn_) return res;
  res.write_err = write_frame(*conn_, request_json, timeout_ms);
  if (res.write_err != TxErr::kNone) return res;
  const FrameStatus st =
      reader_.poll(*conn_, timeout_ms, timeout_ms, &res.payload);
  res.read_status = st;
  if (st != FrameStatus::kFrame) return res;
  res.transport_ok = true;
  res.reply_parsed = parse_reply(res.payload, &res.fields);
  return res;
}

RetryResult Client::call_retry(const std::string& request_json,
                               const RetryPolicy& policy, int timeout_ms) {
  RetryResult out;
  // xorshift64 for the jitter: deterministic per seed, no global RNG.
  std::uint64_t rng = policy.jitter_seed ? policy.jitter_seed : 1;
  const auto next_rng = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  out.last = call(request_json, timeout_ms);
  for (int retry = 0; retry < policy.max_retries && out.last.shed(); ++retry) {
    // Schedule: half-jitter the exponential step (uniform in
    // [step/2, step]) so a thundering herd of shed clients decorrelates,
    // but never sleep less than the server's own hint — retrying before
    // the bucket refills is a guaranteed wasted attempt. Cap wins last.
    const int exp_ms = policy.base_backoff_ms
                       << std::min(retry, 20);  // no overflow
    const int jittered =
        exp_ms / 2 + static_cast<int>(next_rng() %
                                      static_cast<std::uint64_t>(exp_ms / 2 +
                                                                 1));
    int backoff =
        std::max(jittered, static_cast<int>(out.last.fields.retry_after_ms));
    backoff = std::min(backoff, policy.max_backoff_ms);
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    out.total_backoff_ms += backoff;
    // An accept-level shed closes the connection server-side; quota and
    // drain sheds keep it open. Try the existing wire first, and treat
    // reconnect-and-resend as part of the same attempt when it is gone.
    out.last = call(request_json, timeout_ms);
    if (!out.last.transport_ok) {
      reconnect();
      out.last = call(request_json, timeout_ms);
    }
    out.attempts += 1;
  }
  return out;
}

void Client::close() {
  if (conn_) conn_->close();
  conn_.reset();
}

}  // namespace limsynth::serve
