// Multi-tenant admission and scheduling for the characterization daemon.
//
// The PR-7 server queued whole *connections* FIFO, so one flooding
// client monopolized the worker pool and every other tenant's p99 paid
// for it. This layer moves the contention point to *request* granularity
// with three independent admission gates and a fair dispatcher:
//
//   1. Token-bucket quotas per client_id (configurable rate/burst plus a
//      per-client override table). An empty bucket sheds the request
//      with the existing `retry_after_ms` reply, computed from the
//      bucket's actual refill time — the client is told exactly when
//      capacity exists again.
//   2. Deadline-aware admission: a request carrying `deadline_ms` is
//      rejected at enqueue time when the queue backlog (EWMA of
//      per-verb service times, divided across workers) already exceeds
//      it — a refusal in microseconds instead of a worker burned on a
//      request that was going to time out mid-flight anyway.
//   3. A poison-request circuit breaker (PoisonBreaker): a request
//      fingerprint that repeatedly dies (watchdog kill / handler fault)
//      is quarantined with a typed `quarantined` reply instead of being
//      re-executed — the serve-side mirror of brick/store's
//      quarantine-with-reason for corrupt entries.
//
// Admitted work lands in a per-client queue and workers pop via
// deficit-weighted round-robin: each rotation grants every backlogged
// client one quantum of credit, and a batch frame costs its item count,
// so a tenant with 40 queued requests and a tenant with 1 alternate
// instead of the 40 going first. A flooding client degrades only
// itself.
//
// Accounting is conserved per tenant: every frame attributed to a
// client ends served (a handler reply, ok or typed error) or shed
// (quota / deadline / drain), and `accepted == served + shed` holds in
// every ClientStatsRow the server exposes via the `stats` verb and the
// drain provenance lines.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/codec.hpp"

namespace limsynth::serve {

/// Token-bucket parameters. rps <= 0 means unlimited (the bucket is
/// never consulted); burst < 1 is clamped to 1 so a configured client
/// can always make progress.
struct QuotaSpec {
  double rps = 0.0;
  double burst = 0.0;
};

/// Per-tenant accounting. Conservation: accepted == served + shed where
/// served = served_ok + served_error and shed = shed_quota +
/// shed_deadline + shed_drain.
struct ClientCounters {
  std::uint64_t accepted = 0;      ///< frames attributed to this client
  std::uint64_t served_ok = 0;     ///< handler replies with ok:true
  std::uint64_t served_error = 0;  ///< typed error replies (incl. quarantined)
  std::uint64_t shed_quota = 0;    ///< token bucket empty
  std::uint64_t shed_deadline = 0; ///< rejected at enqueue: deadline unmeetable
  std::uint64_t shed_drain = 0;    ///< queued at drain time
  std::uint64_t quarantined = 0;   ///< subset of served_error via the breaker

  std::uint64_t served() const { return served_ok + served_error; }
  std::uint64_t shed() const { return shed_quota + shed_deadline + shed_drain; }
  bool conserved() const { return accepted == served() + shed(); }
};

struct ClientStatsRow {
  std::string id;
  ClientCounters n;
};

/// Poison-request circuit breaker, keyed on request_fingerprint(). A
/// fingerprint whose executions die `threshold` consecutive times
/// (watchdog kill = resource_exhausted, handler fault = internal) is
/// quarantined: further executions are refused with a typed
/// `quarantined` reply until the process restarts. Clean typed rejects
/// (invalid_config, io, ...) neither count as deaths nor reset the
/// streak; a success resets it. Thread-safe.
class PoisonBreaker {
 public:
  explicit PoisonBreaker(int threshold = 3) : threshold_(threshold) {}

  /// True when `fingerprint` is quarantined; *message (optional)
  /// receives the stable reply text (identical for every refusal, so a
  /// batched and an individual refusal are byte-identical).
  bool quarantined(std::uint64_t fingerprint, std::string* message) const;

  /// Records one execution outcome. Deaths are resource_exhausted and
  /// internal; kInterrupted (drain preemption) is explicitly not a
  /// death — a SIGTERM must not poison whatever happened to be running.
  void record(std::uint64_t fingerprint, bool ok, ErrorCode code);

  std::uint64_t quarantined_fingerprints() const;

 private:
  struct Entry {
    int consecutive_deaths = 0;
    bool tripped = false;
    ErrorCode last_death = ErrorCode::kInternal;
  };

  int threshold_;
  mutable std::mutex mu_;
  std::map<std::uint64_t, Entry> entries_;
};

/// One admitted request waiting for (or being executed by) a worker.
/// The session thread blocks on `wait()` while a worker (or the drain)
/// fulfills it exactly once.
struct WorkItem {
  Request req;
  std::string client;
  int cost = 1;  ///< DRR cost: 1, or the item count for a batch
  std::chrono::steady_clock::time_point enqueued{};

  /// Fulfilled exactly once by a worker or by drain().
  void fulfill(std::string reply_payload, bool reply_ok, ErrorCode reply_code);
  /// Blocks until fulfilled; returns the reply payload.
  const std::string& wait();

  bool ok = false;
  ErrorCode code = ErrorCode::kInternal;
  std::string reply;

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
};

/// Outcome of Scheduler::submit().
struct Admission {
  enum class Verdict {
    kAdmitted = 0,
    kShedQuota,     ///< bucket empty; retry_after_ms says when to retry
    kShedDeadline,  ///< backlog estimate already exceeds deadline_ms
    kShedDrain,     ///< submitted after drain() began; nothing will pop it
  };
  Verdict verdict = Verdict::kAdmitted;
  int retry_after_ms = 0;              ///< kShedQuota: bucket refill time
  double estimated_wait_ms = 0.0;      ///< kShedDeadline: the estimate
  std::shared_ptr<WorkItem> item;      ///< kAdmitted: wait() on this
};

class Scheduler {
 public:
  struct Options {
    int workers = 4;              ///< divisor for backlog estimates
    QuotaSpec default_quota;      ///< rps <= 0: quotas disabled by default
    std::map<std::string, QuotaSpec> quota_overrides;  ///< by client_id
    double ewma_alpha = 0.3;      ///< per-verb service-time smoothing
    int retry_after_ms = 250;     ///< advertised in drain shed replies
  };

  explicit Scheduler(const Options& options);

  /// Runs every admission gate in order (quota, then deadline) and
  /// enqueues on success. Never blocks.
  Admission submit(const Request& req, const std::string& client);

  /// Blocks until an item is available (returns it, DRR order) or the
  /// scheduler is drained with an empty queue (returns nullptr).
  std::shared_ptr<WorkItem> pop();

  /// Worker report after executing `item`: updates the per-verb EWMA
  /// and the client's served counters. `quarantined` flags a breaker
  /// refusal (counted inside served_error, plus its own counter).
  void record_service(const WorkItem& item, bool ok, double seconds,
                      bool quarantined);

  /// Frames answered without a worker trip (stats verb, protocol
  /// errors): keeps per-client conservation exact.
  void note_inline(const std::string& client, bool ok);

  /// Sheds every queued item with a drain reply and makes pop() return
  /// nullptr once the queues are empty. Returns the number of requests
  /// shed. Idempotent.
  std::uint64_t drain();

  /// Sorted per-client snapshot.
  std::vector<ClientStatsRow> client_stats() const;

  /// Queued request count (all clients), for observability.
  std::size_t backlog() const;

 private:
  struct ClientState {
    ClientCounters n;
    // Token bucket (lazily refilled on each submit).
    double tokens = 0.0;
    bool bucket_primed = false;
    std::chrono::steady_clock::time_point last_refill{};
    QuotaSpec quota;
    // DRR state.
    std::deque<std::shared_ptr<WorkItem>> queue;
    double deficit = 0.0;
    bool in_rotation = false;
  };

  ClientState& state_locked(const std::string& client);
  double backlog_seconds_locked() const;
  double ewma_locked(Op op) const;

  Options opt_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, ClientState> clients_;
  std::deque<std::string> rotation_;  ///< clients with non-empty queues
  double ewma_seconds_[8] = {};       ///< per-Op service time, 0 = no sample
  bool ewma_primed_[8] = {};
  std::size_t queued_ = 0;
  bool draining_ = false;
};

}  // namespace limsynth::serve
