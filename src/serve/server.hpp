// The fault-tolerant multi-tenant characterization daemon.
//
// Architecture (one paragraph): the run() thread accepts connections and
// hands them to a bounded pool of *session* threads (capacity = workers +
// queue_depth, the PR-7 concurrency envelope); overflow is shed at accept
// with a `retry_after_ms` reply. Each session reads framed JSON requests
// off its connection, answers protocol errors and the `stats` verb
// inline, and pushes real work through the admission gates of a
// Scheduler (serve/sched.hpp): per-client token-bucket quotas, then
// deadline-aware admission against an EWMA backlog estimate. Admitted
// requests land in per-client queues; a separate pool of `workers`
// *executor* threads pops them in deficit-weighted round-robin order —
// so a flooding tenant queues behind itself, not in front of everyone —
// runs the handler under its Watchdog and the poison-request circuit
// breaker, and fulfills the session's wait. Every request runs under the
// PR-2 typed-error catch, so a poisoned request costs one reply, never
// the process. A SIGTERM drain stops accepting, sheds every queued
// request with a typed drain reply, lets in-flight requests finish or
// deadline out, and returns from run() with every connection closed and
// per-client accounting conserved (accepted == served + shed for every
// tenant).
//
// Failure-model testing: ServeOptions::conn_filter lets tests wrap every
// accepted connection in a FaultConn, driving torn frames, short reads,
// EAGAIN storms, resets, and slow-loris assembly through the exact code
// paths production traffic uses.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/handler.hpp"
#include "serve/sched.hpp"
#include "serve/transport.hpp"

namespace limsynth::serve {

struct ServeOptions {
  int workers = 4;      ///< executor threads (requests served concurrently)
  int queue_depth = 8;  ///< extra connections held beyond the workers
  std::size_t max_frame_bytes = 1 << 20;
  /// Per-request compute budget (Watchdog) and the cap on any
  /// per-request deadline_ms override.
  double request_deadline_seconds = 30.0;
  /// Closing an idle keep-alive connection frees its session (ms waiting
  /// for the first byte of the next request).
  int idle_timeout_ms = 30000;
  /// Slow-loris bound: first byte of a frame to its completion (ms).
  int frame_timeout_ms = 2000;
  int write_timeout_ms = 2000;
  int retry_after_ms = 250;  ///< advertised in connection-level shed replies
  int accept_poll_ms = 50;   ///< accept/drain responsiveness granularity
  /// Default per-client token bucket; rps <= 0 disables quotas. burst
  /// defaults to max(rps, 1) when left at 0.
  double quota_rps = 0.0;
  double quota_burst = 0.0;
  /// Per-client quota overrides by client_id (beats the default).
  std::map<std::string, QuotaSpec> quota_overrides;
  /// Consecutive deaths before a request fingerprint is quarantined.
  int poison_threshold = 3;
  /// Set by the SIGTERM handler: run() drains and returns.
  const std::atomic<bool>* shutdown = nullptr;
  /// Test seam: wraps every accepted connection (e.g. in a FaultConn).
  std::function<std::unique_ptr<Conn>(std::unique_ptr<Conn>)> conn_filter;
};

/// Monotonic counters; all connections are accounted for:
/// accepted == shed + closed once run() returns (no leaked connections).
struct ServeStats {
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;           ///< refused with retry_after_ms
  std::uint64_t closed = 0;         ///< served connections fully closed
  std::uint64_t drained = 0;        ///< requests/conns answered at drain
  std::uint64_t requests = 0;       ///< complete frames dispatched
  std::uint64_t replies_ok = 0;
  std::uint64_t replies_error = 0;  ///< typed error replies (incl. sheds)
  std::uint64_t deadline_exceeded = 0;  ///< watchdog kills in flight
  std::uint64_t quota_shed = 0;         ///< token bucket refusals
  std::uint64_t deadline_rejected = 0;  ///< admission-time deadline refusals
  std::uint64_t quarantined = 0;        ///< poison-breaker refusals (items)
  std::uint64_t batches = 0;            ///< batch frames executed
  std::uint64_t batch_items = 0;        ///< items carried by those frames
  std::uint64_t protocol_errors = 0;  ///< oversized/garbage frames
  std::uint64_t disconnects = 0;    ///< peer vanished (reset/torn/EOF mid-op)
  std::uint64_t slow_loris = 0;     ///< frame-assembly timeouts
  std::uint64_t idle_closed = 0;    ///< keep-alive reaped after idling
};

class Server {
 public:
  /// The listener stays owned by the caller (the CLI prints its address);
  /// the server closes it when draining.
  Server(Listener& listener, const HandlerContext& ctx,
         const ServeOptions& options);

  /// Serves until `options.shutdown` becomes true (or forever without
  /// one). Blocks; returns after the drain completes with all sessions
  /// and executors joined and every connection closed.
  void run();

  ServeStats stats() const;

  /// Per-tenant accounting snapshot (sorted by client id). After run()
  /// returns, every row satisfies ClientCounters::conserved().
  std::vector<ClientStatsRow> client_stats() const;

 private:
  void session_loop();
  void executor_loop();
  void serve_connection(std::unique_ptr<Conn> conn,
                        const std::string& conn_client);
  /// Parses, admits, and (for admitted work) waits out one frame;
  /// returns the reply payload.
  std::string dispatch(const std::string& payload,
                       const std::string& conn_client);
  std::string stats_reply(const std::string& id) const;
  bool draining() const { return draining_.load(std::memory_order_acquire); }
  int session_count() const { return opt_.workers + opt_.queue_depth; }

  Listener& listener_;
  HandlerContext ctx_;
  ServeOptions opt_;
  PoisonBreaker breaker_;
  std::unique_ptr<Scheduler> sched_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::unique_ptr<Conn>> conn_queue_;
  int busy_sessions_ = 0;
  std::atomic<std::uint64_t> conn_seq_{0};
  std::atomic<bool> draining_{false};

  // Stats counters are individually atomic; stats() snapshots them.
  struct Counters {
    std::atomic<std::uint64_t> accepted{0}, shed{0}, closed{0}, drained{0},
        requests{0}, replies_ok{0}, replies_error{0}, deadline_exceeded{0},
        quota_shed{0}, deadline_rejected{0}, quarantined{0}, batches{0},
        batch_items{0}, protocol_errors{0}, disconnects{0}, slow_loris{0},
        idle_closed{0};
  };
  Counters n_;
};

}  // namespace limsynth::serve
