// The fault-tolerant multi-client characterization daemon.
//
// Architecture (one paragraph): the run() thread accepts connections and
// pushes them onto a bounded queue; a bounded pool of worker threads pops
// connections and serves framed JSON requests on them until the client
// closes, misbehaves, or goes idle. Overload is shed explicitly — when
// the queue is full the acceptor answers with a `retry_after_ms` reply
// and closes, so saturation degrades to fast refusals instead of
// unbounded memory growth. Every request runs under a Watchdog deadline
// and the PR-2 typed-error catch, so a poisoned request costs one reply,
// never the process. A SIGTERM drain (ServeOptions::shutdown) stops
// accepting, gives queued-but-unserved connections a shed reply, lets
// in-flight requests finish or deadline out, and returns from run() with
// every connection closed — the caller then flushes store stats and
// exits with the stable interrupted code (8).
//
// Failure-model testing: ServeOptions::conn_filter lets tests wrap every
// accepted connection in a FaultConn, driving torn frames, short reads,
// EAGAIN storms, resets, and slow-loris assembly through the exact code
// paths production traffic uses.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>

#include "serve/handler.hpp"
#include "serve/transport.hpp"

namespace limsynth::serve {

struct ServeOptions {
  int workers = 4;      ///< connections served concurrently
  int queue_depth = 8;  ///< accepted connections awaiting a worker
  std::size_t max_frame_bytes = 1 << 20;
  /// Per-request compute budget (Watchdog) and the cap on any
  /// per-request deadline_ms override.
  double request_deadline_seconds = 30.0;
  /// Closing an idle keep-alive connection frees its worker (ms waiting
  /// for the first byte of the next request).
  int idle_timeout_ms = 30000;
  /// Slow-loris bound: first byte of a frame to its completion (ms).
  int frame_timeout_ms = 2000;
  int write_timeout_ms = 2000;
  int retry_after_ms = 250;  ///< advertised in shed replies
  int accept_poll_ms = 50;   ///< accept/drain responsiveness granularity
  /// Set by the SIGTERM handler: run() drains and returns.
  const std::atomic<bool>* shutdown = nullptr;
  /// Test seam: wraps every accepted connection (e.g. in a FaultConn).
  std::function<std::unique_ptr<Conn>(std::unique_ptr<Conn>)> conn_filter;
};

/// Monotonic counters; all connections are accounted for:
/// accepted == shed + closed once run() returns (no leaked connections).
struct ServeStats {
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;           ///< refused with retry_after_ms
  std::uint64_t closed = 0;         ///< served connections fully closed
  std::uint64_t drained = 0;        ///< queued conns answered at drain
  std::uint64_t requests = 0;       ///< complete frames dispatched
  std::uint64_t replies_ok = 0;
  std::uint64_t replies_error = 0;  ///< typed error replies
  std::uint64_t deadline_exceeded = 0;  ///< subset of replies_error
  std::uint64_t protocol_errors = 0;  ///< oversized/garbage frames
  std::uint64_t disconnects = 0;    ///< peer vanished (reset/torn/EOF mid-op)
  std::uint64_t slow_loris = 0;     ///< frame-assembly timeouts
  std::uint64_t idle_closed = 0;    ///< keep-alive reaped after idling
};

class Server {
 public:
  /// The listener stays owned by the caller (the CLI prints its address);
  /// the server closes it when draining.
  Server(Listener& listener, const HandlerContext& ctx,
         const ServeOptions& options);

  /// Serves until `options.shutdown` becomes true (or forever without
  /// one). Blocks; returns after the drain completes with all workers
  /// joined and every connection closed.
  void run();

  ServeStats stats() const;

 private:
  void worker_loop();
  void serve_connection(std::unique_ptr<Conn> conn);
  /// Parses + dispatches one frame, returns the reply payload.
  std::string dispatch(const std::string& payload);
  std::string stats_reply(const std::string& id) const;
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  Listener& listener_;
  HandlerContext ctx_;
  ServeOptions opt_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::unique_ptr<Conn>> queue_;
  std::atomic<bool> draining_{false};

  // Stats counters are individually atomic; stats() snapshots them.
  struct Counters {
    std::atomic<std::uint64_t> accepted{0}, shed{0}, closed{0}, drained{0},
        requests{0}, replies_ok{0}, replies_error{0}, deadline_exceeded{0},
        protocol_errors{0}, disconnects{0}, slow_loris{0}, idle_closed{0};
  };
  Counters n_;
};

}  // namespace limsynth::serve
