// Blocking client for the characterization daemon.
//
// Used by `limsynth call`, the serve bench, and the integration tests.
// One connection, sequential framed request/reply calls; every failure is
// a classified CallResult, never an exception — client code (CI scripts,
// load generators) must distinguish "server said no" (a typed reply)
// from "the wire broke" (a transport error).
#pragma once

#include <memory>
#include <string>

#include "serve/codec.hpp"
#include "serve/framing.hpp"
#include "serve/transport.hpp"

namespace limsynth::serve {

struct CallResult {
  bool transport_ok = false;  ///< a complete reply frame arrived
  TxErr write_err = TxErr::kNone;
  FrameStatus read_status = FrameStatus::kOther;
  std::string payload;   ///< raw reply JSON when transport_ok
  ReplyFields fields;    ///< decoded when transport_ok and parseable
  bool reply_parsed = false;
};

class Client {
 public:
  /// Connects immediately; connected() reports the outcome.
  Client(Transport& transport, const Endpoint& ep, int timeout_ms = 2000);

  bool connected() const { return conn_ != nullptr; }

  /// Sends one request payload and waits up to `timeout_ms` for the
  /// reply frame.
  CallResult call(const std::string& request_json, int timeout_ms = 30000);

  /// Raw access for fault-shaped clients (torn frames, partial bytes).
  Conn* conn() { return conn_.get(); }
  /// Replaces the connection (tests wrap it in a FaultConn).
  void wrap(std::unique_ptr<Conn> conn) { conn_ = std::move(conn); }
  std::unique_ptr<Conn> release() { return std::move(conn_); }

  void close();

 private:
  std::unique_ptr<Conn> conn_;
  FrameReader reader_{1 << 20};
};

}  // namespace limsynth::serve
