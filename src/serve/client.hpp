// Blocking client for the characterization daemon.
//
// Used by `limsynth call`, the serve bench, and the integration tests.
// One connection, sequential framed request/reply calls; every failure is
// a classified CallResult, never an exception — client code (CI scripts,
// load generators) must distinguish "server said no" (a typed reply)
// from "the wire broke" (a transport error).
#pragma once

#include <memory>
#include <string>

#include "serve/codec.hpp"
#include "serve/framing.hpp"
#include "serve/transport.hpp"

namespace limsynth::serve {

struct CallResult {
  bool transport_ok = false;  ///< a complete reply frame arrived
  TxErr write_err = TxErr::kNone;
  FrameStatus read_status = FrameStatus::kOther;
  std::string payload;   ///< raw reply JSON when transport_ok
  ReplyFields fields;    ///< decoded when transport_ok and parseable
  bool reply_parsed = false;

  /// A shed reply: the server said "not now" with a retry_after_ms hint
  /// (saturation, quota, drain) — the retryable refusals.
  bool shed() const {
    return transport_ok && reply_parsed && !fields.ok &&
           fields.retry_after_ms >= 0.0;
  }
};

/// Backoff policy for call_retry(). Sleeps honor the server's
/// retry_after_ms hint when one is present, otherwise exponential from
/// base_backoff_ms; every sleep is half-jittered (deterministic from
/// jitter_seed) and capped at max_backoff_ms.
struct RetryPolicy {
  int max_retries = 0;        ///< retries after the first attempt
  int base_backoff_ms = 100;  ///< exponential base absent a server hint
  int max_backoff_ms = 2000;  ///< cap on any single sleep
  std::uint64_t jitter_seed = 1;
};

struct RetryResult {
  CallResult last;           ///< the final attempt's outcome
  int attempts = 1;          ///< calls made (1 = no retry needed)
  int total_backoff_ms = 0;  ///< summed sleeps
};

class Client {
 public:
  /// Connects immediately; connected() reports the outcome.
  Client(Transport& transport, const Endpoint& ep, int timeout_ms = 2000);

  bool connected() const { return conn_ != nullptr; }

  /// Sends one request payload and waits up to `timeout_ms` for the
  /// reply frame.
  CallResult call(const std::string& request_json, int timeout_ms = 30000);

  /// call() plus shed handling: a reply carrying retry_after_ms is
  /// retried up to policy.max_retries times with capped, jittered
  /// backoff (the server's hint wins over the exponential schedule when
  /// larger). Reconnects between attempts when the server hung up after
  /// shedding (accept-level sheds close the connection). Non-shed
  /// outcomes — success, typed errors, transport faults — return
  /// immediately; retries exhausted returns the last shed reply, which
  /// the caller maps to the shed taxonomy exit.
  RetryResult call_retry(const std::string& request_json,
                         const RetryPolicy& policy, int timeout_ms = 30000);

  /// Raw access for fault-shaped clients (torn frames, partial bytes).
  Conn* conn() { return conn_.get(); }
  /// Replaces the connection (tests wrap it in a FaultConn).
  void wrap(std::unique_ptr<Conn> conn) { conn_ = std::move(conn); }
  std::unique_ptr<Conn> release() { return std::move(conn_); }

  void close();

 private:
  void reconnect();

  Transport* transport_;
  Endpoint ep_;
  int connect_timeout_ms_;
  std::unique_ptr<Conn> conn_;
  FrameReader reader_{1 << 20};
};

}  // namespace limsynth::serve
