#include "serve/sched.hpp"

#include <algorithm>
#include <cmath>

#include "util/jsonl.hpp"

namespace limsynth::serve {

namespace {

constexpr double kQuantum = 1.0;  ///< DRR credit granted per rotation

std::size_t op_slot(Op op) { return static_cast<std::size_t>(op); }

}  // namespace

// ---------------------------------------------------------------------
// PoisonBreaker
// ---------------------------------------------------------------------

bool PoisonBreaker::quarantined(std::uint64_t fingerprint,
                                std::string* message) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = entries_.find(fingerprint);
  if (it == entries_.end() || !it->second.tripped) return false;
  if (message != nullptr) {
    // Stable text: every refusal of this fingerprint — batched or
    // individual — is byte-identical.
    *message = "request fingerprint " + jsonl::to_hex(fingerprint) +
               " quarantined after " + std::to_string(threshold_) +
               " consecutive failures (last: " +
               error_code_name(it->second.last_death) +
               "); not re-executing";
  }
  return true;
}

void PoisonBreaker::record(std::uint64_t fingerprint, bool ok,
                           ErrorCode code) {
  std::lock_guard<std::mutex> lk(mu_);
  if (ok) {
    // A success clears the streak entirely: the fingerprint is healthy.
    entries_.erase(fingerprint);
    return;
  }
  // Only genuine deaths count: a watchdog kill or an untyped handler
  // fault. Clean typed rejects are deterministic cheap replies, and a
  // drain preemption (kInterrupted) says nothing about the request.
  if (code != ErrorCode::kResourceExhausted && code != ErrorCode::kInternal)
    return;
  Entry& e = entries_[fingerprint];
  if (e.tripped) return;
  e.last_death = code;
  if (++e.consecutive_deaths >= threshold_) e.tripped = true;
}

std::uint64_t PoisonBreaker::quarantined_fingerprints() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t n = 0;
  for (const auto& [fp, e] : entries_)
    if (e.tripped) ++n;
  return n;
}

// ---------------------------------------------------------------------
// WorkItem
// ---------------------------------------------------------------------

void WorkItem::fulfill(std::string reply_payload, bool reply_ok,
                       ErrorCode reply_code) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (done_) return;  // first fulfillment wins (worker vs. drain race)
    reply = std::move(reply_payload);
    ok = reply_ok;
    code = reply_code;
    done_ = true;
  }
  cv_.notify_all();
}

const std::string& WorkItem::wait() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return done_; });
  return reply;
}

// ---------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------

Scheduler::Scheduler(const Options& options) : opt_(options) {
  if (opt_.workers < 1) opt_.workers = 1;
}

Scheduler::ClientState& Scheduler::state_locked(const std::string& client) {
  auto it = clients_.find(client);
  if (it != clients_.end()) return it->second;
  ClientState& c = clients_[client];
  const auto ov = opt_.quota_overrides.find(client);
  c.quota = (ov != opt_.quota_overrides.end()) ? ov->second
                                               : opt_.default_quota;
  if (c.quota.rps > 0.0 && c.quota.burst < 1.0)
    c.quota.burst = std::max(1.0, c.quota.rps);
  return c;
}

double Scheduler::ewma_locked(Op op) const {
  return ewma_primed_[op_slot(op)] ? ewma_seconds_[op_slot(op)] : 0.0;
}

double Scheduler::backlog_seconds_locked() const {
  double total = 0.0;
  for (const auto& [id, c] : clients_)
    for (const auto& item : c.queue) total += ewma_locked(item->req.op);
  return total;
}

Admission Scheduler::submit(const Request& req, const std::string& client) {
  const auto now = std::chrono::steady_clock::now();
  const int cost =
      req.op == Op::kBatch ? static_cast<int>(req.batch.size()) : 1;

  std::lock_guard<std::mutex> lk(mu_);
  ClientState& c = state_locked(client);
  c.n.accepted += 1;

  Admission out;

  // Gate 0: a request that races past the session's drain check after
  // drain() swept the queues would wait forever — refuse it here instead.
  if (draining_) {
    out.verdict = Admission::Verdict::kShedDrain;
    out.retry_after_ms = opt_.retry_after_ms;
    c.n.shed_drain += 1;
    return out;
  }

  // Gate 1: token bucket. A batch pays one token per item, so batching
  // amortizes dispatch, not the quota.
  if (c.quota.rps > 0.0) {
    if (!c.bucket_primed) {
      c.tokens = c.quota.burst;
      c.bucket_primed = true;
    } else {
      const double dt = std::chrono::duration<double>(now - c.last_refill)
                            .count();
      c.tokens = std::min(c.quota.burst, c.tokens + dt * c.quota.rps);
    }
    c.last_refill = now;
    if (c.tokens + 1e-9 < static_cast<double>(cost)) {
      const double deficit = static_cast<double>(cost) - c.tokens;
      out.verdict = Admission::Verdict::kShedQuota;
      out.retry_after_ms = std::max(
          1, static_cast<int>(std::ceil(deficit / c.quota.rps * 1000.0)));
      c.n.shed_quota += 1;
      return out;
    }
    c.tokens -= static_cast<double>(cost);
  }

  // Gate 2: deadline-aware admission. Only meaningful once the EWMA has
  // samples; an unknown verb estimates zero and is admitted (the
  // watchdog still bounds it mid-flight).
  if (req.deadline_ms > 0.0) {
    const double est_seconds =
        backlog_seconds_locked() / static_cast<double>(opt_.workers) +
        ewma_locked(req.op);
    const double est_ms = est_seconds * 1000.0;
    if (est_ms > req.deadline_ms) {
      out.verdict = Admission::Verdict::kShedDeadline;
      out.estimated_wait_ms = est_ms;
      c.n.shed_deadline += 1;
      return out;
    }
  }

  auto item = std::make_shared<WorkItem>();
  item->req = req;
  item->client = client;
  item->cost = cost;
  item->enqueued = now;
  c.queue.push_back(item);
  queued_ += 1;
  if (!c.in_rotation) {
    rotation_.push_back(client);
    c.in_rotation = true;
  }
  out.item = std::move(item);
  cv_.notify_one();
  return out;
}

std::shared_ptr<WorkItem> Scheduler::pop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_.wait(lk, [&] { return queued_ > 0 || draining_; });
    if (queued_ == 0) {
      if (draining_) return nullptr;
      continue;
    }
    // Deficit-weighted round-robin: each rotation grants the head
    // client one quantum; it serves when its credit covers the head
    // item's cost. Every full lap grows each deficit by kQuantum, so
    // the loop terminates (an expensive batch waits whole laps, which
    // is exactly the fairness point).
    for (;;) {
      const std::string id = rotation_.front();
      ClientState& c = clients_[id];
      c.deficit += kQuantum;
      const auto& head = c.queue.front();
      if (c.deficit + 1e-9 >= static_cast<double>(head->cost)) {
        std::shared_ptr<WorkItem> item = c.queue.front();
        c.queue.pop_front();
        c.deficit -= static_cast<double>(item->cost);
        queued_ -= 1;
        rotation_.pop_front();
        if (c.queue.empty()) {
          c.deficit = 0.0;  // credit does not accumulate while idle
          c.in_rotation = false;
        } else {
          rotation_.push_back(id);
        }
        return item;
      }
      rotation_.pop_front();
      rotation_.push_back(id);
    }
  }
}

void Scheduler::record_service(const WorkItem& item, bool ok, double seconds,
                               bool quarantined) {
  std::lock_guard<std::mutex> lk(mu_);
  const std::size_t slot = op_slot(item.req.op);
  if (!ewma_primed_[slot]) {
    ewma_seconds_[slot] = seconds;
    ewma_primed_[slot] = true;
  } else {
    ewma_seconds_[slot] = opt_.ewma_alpha * seconds +
                          (1.0 - opt_.ewma_alpha) * ewma_seconds_[slot];
  }
  ClientState& c = state_locked(item.client);
  if (ok)
    c.n.served_ok += 1;
  else
    c.n.served_error += 1;
  if (quarantined) c.n.quarantined += 1;
}

void Scheduler::note_inline(const std::string& client, bool ok) {
  std::lock_guard<std::mutex> lk(mu_);
  ClientState& c = state_locked(client);
  c.n.accepted += 1;
  if (ok)
    c.n.served_ok += 1;
  else
    c.n.served_error += 1;
}

std::uint64_t Scheduler::drain() {
  std::vector<std::shared_ptr<WorkItem>> doomed;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (draining_ && queued_ == 0) return 0;
    draining_ = true;
    for (auto& [id, c] : clients_) {
      for (auto& item : c.queue) {
        c.n.shed_drain += 1;
        doomed.push_back(std::move(item));
      }
      c.queue.clear();
      c.deficit = 0.0;
      c.in_rotation = false;
    }
    rotation_.clear();
    queued_ = 0;
  }
  cv_.notify_all();
  // Fulfill outside the lock: each wait()ing session wakes immediately.
  for (auto& item : doomed)
    item->fulfill(make_drain_shed_reply(item->req.id, opt_.retry_after_ms),
                  false, ErrorCode::kResourceExhausted);
  return static_cast<std::uint64_t>(doomed.size());
}

std::vector<ClientStatsRow> Scheduler::client_stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<ClientStatsRow> rows;
  rows.reserve(clients_.size());
  for (const auto& [id, c] : clients_) rows.push_back({id, c.n});
  return rows;
}

std::size_t Scheduler::backlog() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queued_;
}

}  // namespace limsynth::serve
