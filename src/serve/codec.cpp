#include "serve/codec.hpp"

#include "util/jsonl.hpp"

namespace limsynth::serve {

const char* op_name(Op op) {
  switch (op) {
    case Op::kPing: return "ping";
    case Op::kCharacterize: return "characterize";
    case Op::kDsePoint: return "dse_point";
    case Op::kAnalyze: return "analyze";
    case Op::kStats: return "stats";
    case Op::kSleep: return "sleep";
  }
  return "ping";
}

namespace {

bool op_from_name(const std::string& name, Op* out) {
  for (Op op : {Op::kPing, Op::kCharacterize, Op::kDsePoint, Op::kAnalyze,
                Op::kStats, Op::kSleep}) {
    if (name == op_name(op)) {
      *out = op;
      return true;
    }
  }
  return false;
}

/// Reads an optional string field; absent fields keep the default.
/// Present-but-malformed fields fail the parse (torn or hostile input).
bool opt_string(const std::string& line, const std::string& name,
                std::string* out, std::string* error) {
  const std::size_t pos = jsonl::find_field(line, name);
  if (pos == std::string::npos) return true;
  if (!jsonl::read_string(line, pos, out)) {
    *error = "field \"" + name + "\" is not a valid string";
    return false;
  }
  return true;
}

bool opt_number(const std::string& line, const std::string& name, double* out,
                std::string* error) {
  const std::size_t pos = jsonl::find_field(line, name);
  if (pos == std::string::npos) return true;
  if (!jsonl::read_double(line, pos, out)) {
    *error = "field \"" + name + "\" is not a number";
    return false;
  }
  return true;
}

bool opt_int(const std::string& line, const std::string& name, int* out,
             std::string* error) {
  double v = *out;
  if (!opt_number(line, name, &v, error)) return false;
  *out = static_cast<int>(v);
  return true;
}

bool opt_bool(const std::string& line, const std::string& name, bool* out,
              std::string* error) {
  const std::size_t pos = jsonl::find_field(line, name);
  if (pos == std::string::npos) return true;
  if (!jsonl::read_bool(line, pos, out)) {
    *error = "field \"" + name + "\" is not a bool";
    return false;
  }
  return true;
}

}  // namespace

bool parse_request(const std::string& payload, Request* out,
                   std::string* error) {
  *out = Request{};
  // A quick shape gate before field probing: the jsonl readers themselves
  // never scan past the line, but insisting on an object brace up front
  // gives garbage and binary payloads one crisp diagnostic.
  const std::size_t first = payload.find_first_not_of(" \t\r\n");
  if (first == std::string::npos || payload[first] != '{') {
    *error = "request is not a JSON object";
    return false;
  }
  const std::size_t last = payload.find_last_not_of(" \t\r\n");
  if (payload[last] != '}') {
    *error = "request object is not closed (torn payload?)";
    return false;
  }
  std::string op;
  const std::size_t op_pos = jsonl::find_field(payload, "op");
  if (op_pos == std::string::npos) {
    *error = "request has no \"op\" field";
    return false;
  }
  if (!jsonl::read_string(payload, op_pos, &op)) {
    *error = "\"op\" is not a string";
    return false;
  }
  if (!op_from_name(op, &out->op)) {
    *error = "unknown op \"" + op + "\"";
    return false;
  }
  if (!opt_string(payload, "id", &out->id, error)) return false;
  if (!opt_string(payload, "kind", &out->kind, error)) return false;
  if (!opt_string(payload, "liberty", &out->liberty, error)) return false;
  if (!opt_int(payload, "words", &out->words, error)) return false;
  if (!opt_int(payload, "bits", &out->bits, error)) return false;
  if (!opt_int(payload, "stack", &out->stack, error)) return false;
  if (!opt_int(payload, "brick_words", &out->brick_words, error)) return false;
  if (!opt_int(payload, "banks", &out->banks, error)) return false;
  if (!opt_bool(payload, "ecc", &out->ecc, error)) return false;
  if (!opt_int(payload, "spare_rows", &out->spare_rows, error)) return false;
  if (!opt_int(payload, "yield_chips", &out->yield_chips, error)) return false;
  if (!opt_int(payload, "cycles", &out->cycles, error)) return false;
  double seed = static_cast<double>(out->seed);
  if (!opt_number(payload, "seed", &seed, error)) return false;
  out->seed = static_cast<std::uint64_t>(seed);
  if (!opt_number(payload, "deadline_ms", &out->deadline_ms, error))
    return false;
  if (!opt_number(payload, "sleep_ms", &out->sleep_ms, error)) return false;
  return true;
}

JsonWriter& JsonWriter::add_raw(const std::string& key,
                                const std::string& raw) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += jsonl::json_escape(key);
  body_ += "\":";
  body_ += raw;
  return *this;
}

JsonWriter& JsonWriter::add(const std::string& key, const std::string& value) {
  return add_raw(key, '"' + jsonl::json_escape(value) + '"');
}

JsonWriter& JsonWriter::add(const std::string& key, double value) {
  return add_raw(key, jsonl::format_g17(value));
}

JsonWriter& JsonWriter::add(const std::string& key, std::uint64_t value) {
  return add_raw(key, std::to_string(value));
}

JsonWriter& JsonWriter::add(const std::string& key, int value) {
  return add_raw(key, std::to_string(value));
}

JsonWriter& JsonWriter::add(const std::string& key, bool value) {
  return add_raw(key, value ? "true" : "false");
}

std::string JsonWriter::str() const { return '{' + body_ + '}'; }

std::string make_error_reply(const std::string& id, ErrorCode code,
                             const std::string& message) {
  JsonWriter w;
  w.add("id", id).add("ok", false);
  w.add("error_code", std::string(error_code_name(code)));
  w.add("error", message);
  return w.str();
}

std::string make_shed_reply(int retry_after_ms) {
  JsonWriter w;
  w.add("id", std::string()).add("ok", false);
  w.add("error_code",
        std::string(error_code_name(ErrorCode::kResourceExhausted)));
  w.add("error", std::string("server saturated; retry later"));
  w.add("retry_after_ms", retry_after_ms);
  return w.str();
}

bool parse_reply(const std::string& payload, ReplyFields* out) {
  *out = ReplyFields{};
  const std::size_t ok_pos = jsonl::find_field(payload, "ok");
  if (ok_pos == std::string::npos) return false;
  if (!jsonl::read_bool(payload, ok_pos, &out->ok)) return false;
  std::string unused_error;
  if (!opt_string(payload, "id", &out->id, &unused_error)) return false;
  if (!opt_string(payload, "error_code", &out->error_code, &unused_error))
    return false;
  if (!opt_string(payload, "error", &out->error, &unused_error)) return false;
  if (!opt_number(payload, "retry_after_ms", &out->retry_after_ms,
                  &unused_error))
    return false;
  return true;
}

bool reply_number(const std::string& payload, const std::string& field,
                  double* out) {
  const std::size_t pos = jsonl::find_field(payload, field);
  if (pos == std::string::npos) return false;
  return jsonl::read_double(payload, pos, out);
}

}  // namespace limsynth::serve
