#include "serve/codec.hpp"

#include <algorithm>

#include "util/jsonl.hpp"

namespace limsynth::serve {

const char* op_name(Op op) {
  switch (op) {
    case Op::kPing: return "ping";
    case Op::kCharacterize: return "characterize";
    case Op::kDsePoint: return "dse_point";
    case Op::kAnalyze: return "analyze";
    case Op::kStats: return "stats";
    case Op::kSleep: return "sleep";
    case Op::kBatch: return "batch";
  }
  return "ping";
}

namespace {

bool op_from_name(const std::string& name, Op* out) {
  for (Op op : {Op::kPing, Op::kCharacterize, Op::kDsePoint, Op::kAnalyze,
                Op::kStats, Op::kSleep, Op::kBatch}) {
    if (name == op_name(op)) {
      *out = op;
      return true;
    }
  }
  return false;
}

/// Reads an optional string field; absent fields keep the default.
/// Present-but-malformed fields fail the parse (torn or hostile input).
bool opt_string(const std::string& line, const std::string& name,
                std::string* out, std::string* error) {
  const std::size_t pos = jsonl::find_field(line, name);
  if (pos == std::string::npos) return true;
  if (!jsonl::read_string(line, pos, out)) {
    *error = "field \"" + name + "\" is not a valid string";
    return false;
  }
  return true;
}

bool opt_number(const std::string& line, const std::string& name, double* out,
                std::string* error) {
  const std::size_t pos = jsonl::find_field(line, name);
  if (pos == std::string::npos) return true;
  if (!jsonl::read_double(line, pos, out)) {
    *error = "field \"" + name + "\" is not a number";
    return false;
  }
  return true;
}

bool opt_int(const std::string& line, const std::string& name, int* out,
             std::string* error) {
  double v = *out;
  if (!opt_number(line, name, &v, error)) return false;
  *out = static_cast<int>(v);
  return true;
}

bool opt_bool(const std::string& line, const std::string& name, bool* out,
              std::string* error) {
  const std::size_t pos = jsonl::find_field(line, name);
  if (pos == std::string::npos) return true;
  if (!jsonl::read_bool(line, pos, out)) {
    *error = "field \"" + name + "\" is not a bool";
    return false;
  }
  return true;
}

}  // namespace

bool parse_request(const std::string& payload, Request* out,
                   std::string* error) {
  *out = Request{};
  // A quick shape gate before field probing: the jsonl readers themselves
  // never scan past the line, but insisting on an object brace up front
  // gives garbage and binary payloads one crisp diagnostic.
  const std::size_t first = payload.find_first_not_of(" \t\r\n");
  if (first == std::string::npos || payload[first] != '{') {
    *error = "request is not a JSON object";
    return false;
  }
  const std::size_t last = payload.find_last_not_of(" \t\r\n");
  if (payload[last] != '}') {
    *error = "request object is not closed (torn payload?)";
    return false;
  }
  std::string op;
  const std::size_t op_pos = jsonl::find_field(payload, "op");
  if (op_pos == std::string::npos) {
    *error = "request has no \"op\" field";
    return false;
  }
  if (!jsonl::read_string(payload, op_pos, &op)) {
    *error = "\"op\" is not a string";
    return false;
  }
  if (!op_from_name(op, &out->op)) {
    *error = "unknown op \"" + op + "\"";
    return false;
  }
  if (!opt_string(payload, "id", &out->id, error)) return false;
  if (!opt_string(payload, "client_id", &out->client_id, error)) return false;
  if (out->op == Op::kBatch) {
    const std::size_t items_pos = jsonl::find_field(payload, "items");
    if (items_pos == std::string::npos) {
      *error = "batch request has no \"items\" field";
      return false;
    }
    std::string items;
    if (!jsonl::read_string(payload, items_pos, &items)) {
      *error = "field \"items\" is not a valid string";
      return false;
    }
    // Items travel newline-separated inside the one string field the
    // flat dialect allows. Blank lines are dropped (a trailing '\n' is
    // not an item); an empty or oversized batch is malformed up front so
    // the admission layer never prices phantom or unbounded work.
    std::size_t start = 0;
    while (start <= items.size()) {
      const std::size_t nl = items.find('\n', start);
      const std::size_t end = (nl == std::string::npos) ? items.size() : nl;
      if (end > start) out->batch.push_back(items.substr(start, end - start));
      if (static_cast<int>(out->batch.size()) > kMaxBatchItems) {
        *error = "batch exceeds " + std::to_string(kMaxBatchItems) + " items";
        return false;
      }
      if (nl == std::string::npos) break;
      start = nl + 1;
    }
    if (out->batch.empty()) {
      *error = "batch request carries no items";
      return false;
    }
  }
  if (!opt_string(payload, "kind", &out->kind, error)) return false;
  if (!opt_string(payload, "liberty", &out->liberty, error)) return false;
  if (!opt_int(payload, "words", &out->words, error)) return false;
  if (!opt_int(payload, "bits", &out->bits, error)) return false;
  if (!opt_int(payload, "stack", &out->stack, error)) return false;
  if (!opt_int(payload, "brick_words", &out->brick_words, error)) return false;
  if (!opt_int(payload, "banks", &out->banks, error)) return false;
  if (!opt_bool(payload, "ecc", &out->ecc, error)) return false;
  if (!opt_int(payload, "spare_rows", &out->spare_rows, error)) return false;
  if (!opt_int(payload, "yield_chips", &out->yield_chips, error)) return false;
  if (!opt_int(payload, "cycles", &out->cycles, error)) return false;
  double seed = static_cast<double>(out->seed);
  if (!opt_number(payload, "seed", &seed, error)) return false;
  out->seed = static_cast<std::uint64_t>(seed);
  if (!opt_number(payload, "deadline_ms", &out->deadline_ms, error))
    return false;
  if (!opt_number(payload, "sleep_ms", &out->sleep_ms, error)) return false;
  return true;
}

JsonWriter& JsonWriter::add_raw(const std::string& key,
                                const std::string& raw) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += jsonl::json_escape(key);
  body_ += "\":";
  body_ += raw;
  return *this;
}

JsonWriter& JsonWriter::add(const std::string& key, const std::string& value) {
  return add_raw(key, '"' + jsonl::json_escape(value) + '"');
}

JsonWriter& JsonWriter::add(const std::string& key, double value) {
  return add_raw(key, jsonl::format_g17(value));
}

JsonWriter& JsonWriter::add(const std::string& key, std::uint64_t value) {
  return add_raw(key, std::to_string(value));
}

JsonWriter& JsonWriter::add(const std::string& key, int value) {
  return add_raw(key, std::to_string(value));
}

JsonWriter& JsonWriter::add(const std::string& key, bool value) {
  return add_raw(key, value ? "true" : "false");
}

std::string JsonWriter::str() const { return '{' + body_ + '}'; }

std::string make_error_reply(const std::string& id, ErrorCode code,
                             const std::string& message) {
  JsonWriter w;
  w.add("id", id).add("ok", false);
  w.add("error_code", std::string(error_code_name(code)));
  w.add("error", message);
  return w.str();
}

std::string make_shed_reply(int retry_after_ms) {
  JsonWriter w;
  w.add("id", std::string()).add("ok", false);
  w.add("error_code",
        std::string(error_code_name(ErrorCode::kResourceExhausted)));
  w.add("error", std::string("server saturated; retry later"));
  w.add("retry_after_ms", retry_after_ms);
  return w.str();
}

std::string make_quota_shed_reply(const std::string& id, int retry_after_ms) {
  JsonWriter w;
  w.add("id", id).add("ok", false);
  w.add("error_code",
        std::string(error_code_name(ErrorCode::kResourceExhausted)));
  w.add("error", std::string("client quota exceeded; retry later"));
  w.add("retry_after_ms", retry_after_ms);
  return w.str();
}

std::string make_drain_shed_reply(const std::string& id, int retry_after_ms) {
  JsonWriter w;
  w.add("id", id).add("ok", false);
  w.add("error_code",
        std::string(error_code_name(ErrorCode::kResourceExhausted)));
  w.add("error", std::string("server draining; retry later"));
  w.add("retry_after_ms", retry_after_ms);
  return w.str();
}

std::string make_deadline_reject_reply(const std::string& id,
                                       double estimated_wait_ms,
                                       double deadline_ms) {
  JsonWriter w;
  w.add("id", id).add("ok", false);
  w.add("error_code",
        std::string(error_code_name(ErrorCode::kResourceExhausted)));
  w.add("error", std::string("deadline unmeetable given current backlog"));
  w.add("estimated_wait_ms", estimated_wait_ms);
  w.add("deadline_ms", deadline_ms);
  w.add("retry_after_ms",
        std::max(1, static_cast<int>(estimated_wait_ms - deadline_ms) + 1));
  return w.str();
}

std::uint64_t request_fingerprint(const Request& req) {
  // Canonical field dump in declaration order. deadline_ms is included
  // deliberately: the same shape under a tighter budget is different
  // work as far as "does it die" goes, and must not drag the generous
  // variant into quarantine with it.
  std::string canon;
  canon += op_name(req.op);
  canon += '|';
  canon += req.kind;
  for (int v : {req.words, req.bits, req.stack, req.brick_words, req.banks,
                req.ecc ? 1 : 0, req.spare_rows, req.yield_chips, req.cycles}) {
    canon += '|';
    canon += std::to_string(v);
  }
  canon += '|';
  canon += std::to_string(req.seed);
  canon += '|';
  canon += req.liberty;
  canon += '|';
  canon += jsonl::format_g17(req.deadline_ms);
  canon += '|';
  canon += jsonl::format_g17(req.sleep_ms);
  for (const std::string& item : req.batch) {
    canon += '\n';
    canon += item;
  }
  return jsonl::fnv1a(canon);
}

bool parse_reply(const std::string& payload, ReplyFields* out) {
  *out = ReplyFields{};
  const std::size_t ok_pos = jsonl::find_field(payload, "ok");
  if (ok_pos == std::string::npos) return false;
  if (!jsonl::read_bool(payload, ok_pos, &out->ok)) return false;
  std::string unused_error;
  if (!opt_string(payload, "id", &out->id, &unused_error)) return false;
  if (!opt_string(payload, "error_code", &out->error_code, &unused_error))
    return false;
  if (!opt_string(payload, "error", &out->error, &unused_error)) return false;
  if (!opt_number(payload, "retry_after_ms", &out->retry_after_ms,
                  &unused_error))
    return false;
  return true;
}

bool reply_number(const std::string& payload, const std::string& field,
                  double* out) {
  const std::size_t pos = jsonl::find_field(payload, field);
  if (pos == std::string::npos) return false;
  return jsonl::read_double(payload, pos, out);
}

}  // namespace limsynth::serve
