#include "serve/handler.hpp"

#include <chrono>
#include <thread>

#include "brick/cache.hpp"
#include "lim/dse.hpp"
#include "lim/flow.hpp"
#include "lim/sram_builder.hpp"
#include "util/fs.hpp"
#include "util/watchdog.hpp"

namespace limsynth::serve {

namespace {

tech::BitcellKind parse_kind_or_fail(const std::string& s) {
  if (s == "sram6t") return tech::BitcellKind::kSram6T;
  if (s == "sram8t") return tech::BitcellKind::kSram8T;
  if (s == "cam10t") return tech::BitcellKind::kCamNor10T;
  if (s == "edram") return tech::BitcellKind::kEdram1T1C;
  LIMS_FAIL(ErrorCode::kInvalidConfig,
            "unknown bitcell kind \"" << s
                                      << "\" (sram6t sram8t cam10t edram)");
}

/// Validates an optional external Liberty reference up front: the file
/// must exist, be readable, and look like a .lib. A bad path is a typed
/// error reply — the per-request analog of the CLI's kIo exit.
void check_liberty_ref(const std::string& path) {
  if (path.empty()) return;
  DIAG_CONTEXT("validate liberty reference " + path);
  std::string content;
  const fs::IoStatus st = fs::Fs::real().read_file(path, &content);
  if (st.err == fs::IoErr::kNotFound)
    LIMS_FAIL(ErrorCode::kIo, "liberty file not found: " << path);
  if (!st.ok())
    LIMS_FAIL(ErrorCode::kIo,
              "cannot read liberty file " << path << ": " << st.message);
  const std::size_t first = content.find_first_not_of(" \t\r\n");
  if (first == std::string::npos ||
      content.compare(first, 7, "library") != 0)
    LIMS_FAIL(ErrorCode::kInvalidConfig,
              "not a Liberty library (no leading \"library\" group): "
                  << path);
}

void check_cancelled(const HandlerContext& ctx) {
  if (ctx.cancel != nullptr && ctx.cancel->load(std::memory_order_relaxed))
    LIMS_FAIL(ErrorCode::kInterrupted, "server draining; request abandoned");
}

bool cancelled(const HandlerContext& ctx) {
  return ctx.cancel != nullptr && ctx.cancel->load(std::memory_order_relaxed);
}

double effective_deadline_seconds(const Request& req,
                                  const HandlerContext& ctx) {
  const double cap = ctx.max_deadline_seconds;
  if (req.deadline_ms <= 0.0) return cap;
  const double want = req.deadline_ms / 1000.0;
  return (cap > 0.0 && want > cap) ? cap : want;
}

std::string run_characterize(const Request& req, const HandlerContext& ctx,
                             const Watchdog& wd) {
  DIAG_CONTEXT("serve characterize " + std::to_string(req.words) + "x" +
               std::to_string(req.bits));
  brick::BrickSpec spec;
  spec.bitcell = parse_kind_or_fail(req.kind);
  spec.words = req.words;
  spec.bits = req.bits;
  spec.stack = req.stack;
  wd.check();
  const auto compiled =
      brick::BrickCache::global().get(spec, *ctx.process);
  wd.check();
  const brick::BrickEstimate& e = compiled->estimate;
  JsonWriter w;
  w.add("id", req.id).add("ok", true);
  w.add("op", std::string(op_name(req.op)));
  w.add("brick", spec.name());
  w.add("read_delay_s", e.read_delay).add("read_energy_j", e.read_energy);
  w.add("write_delay_s", e.write_delay).add("write_energy_j", e.write_energy);
  if (e.match_delay > 0.0) {
    w.add("match_delay_s", e.match_delay);
    w.add("match_energy_j", e.match_energy);
  }
  w.add("min_cycle_s", e.min_cycle).add("leakage_w", e.leakage);
  w.add("bank_area_m2", e.bank_area);
  w.add("brick_area_m2", compiled->brick.layout.area);
  return w.str();
}

std::string run_dse_point(const Request& req, const HandlerContext& ctx,
                          const Watchdog& wd) {
  DIAG_CONTEXT("serve dse_point " + std::to_string(req.words) + "x" +
               std::to_string(req.bits) + " bw" +
               std::to_string(req.brick_words));
  lim::PartitionChoice choice;
  choice.words = req.words;
  choice.bits = req.bits;
  choice.brick_words = req.brick_words;
  choice.bitcell = parse_kind_or_fail(req.kind);
  lim::SweepOptions sopt;
  sopt.ecc = req.ecc;
  sopt.spare_rows = req.spare_rows;
  sopt.yield_chips = req.yield_chips;
  sopt.yield_seed = req.seed;
  wd.check();
  // The sweep's own per-point degradation: a sick point comes back with
  // its taxonomy code captured instead of throwing.
  const lim::DsePoint p =
      lim::evaluate_partition_caught(choice, *ctx.process, sopt);
  wd.check();
  if (!p.ok) throw Error(p.error_code, p.error);
  JsonWriter w;
  w.add("id", req.id).add("ok", true);
  w.add("op", std::string(op_name(req.op)));
  w.add("point", choice.label());
  w.add("read_delay_s", p.read_delay).add("read_energy_j", p.read_energy);
  w.add("area_m2", p.area);
  w.add("post_repair_yield", p.post_repair_yield);
  return w.str();
}

std::string run_analyze(const Request& req, const HandlerContext& ctx,
                        const Watchdog& wd) {
  lim::SramConfig cfg;
  cfg.words = req.words;
  cfg.bits = req.bits;
  cfg.banks = req.banks;
  cfg.brick_words = req.brick_words;
  cfg.bitcell = parse_kind_or_fail(req.kind);
  cfg.ecc = req.ecc;
  cfg.spare_rows = req.spare_rows;
  DIAG_CONTEXT("serve analyze " + cfg.name());
  cfg.validate();
  wd.check();
  check_cancelled(ctx);
  lim::SramDesign d = lim::build_sram(cfg, *ctx.process, *ctx.cells);
  wd.check();
  check_cancelled(ctx);
  lim::FlowOptions fopt;
  fopt.activity_cycles = req.cycles;
  fopt.stimulus_seed = req.seed;
  const lim::FlowReport rep =
      lim::run_sram_flow(d, *ctx.cells, *ctx.process, fopt);
  wd.check();
  JsonWriter w;
  w.add("id", req.id).add("ok", true);
  w.add("op", std::string(op_name(req.op)));
  w.add("config", cfg.name());
  w.add("fmax_hz", rep.fmax);
  w.add("area_m2", rep.area);
  w.add("power_w", rep.power.total());
  w.add("energy_per_cycle_j", rep.power.energy_per_cycle);
  w.add("critical_endpoint", rep.timing.critical_endpoint);
  return w.str();
}

std::string run_sleep(const Request& req, const HandlerContext& ctx,
                      const Watchdog& wd) {
  DIAG_CONTEXT("serve sleep");
  const auto t0 = std::chrono::steady_clock::now();
  const auto until =
      t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
               std::chrono::duration<double, std::milli>(req.sleep_ms));
  // Cooperative: the nap is sliced so deadlines and drain both preempt
  // it — this is the op the backpressure and deadline tests lean on.
  while (std::chrono::steady_clock::now() < until) {
    wd.check();
    check_cancelled(ctx);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  wd.check();
  JsonWriter w;
  w.add("id", req.id).add("ok", true);
  w.add("op", std::string(op_name(req.op)));
  w.add("slept_ms", req.sleep_ms);
  return w.str();
}

/// One executed item: the reply payload plus its classification. This is
/// THE execution path — a request sent alone and the same request sent
/// inside a batch both come through here, which is what makes the two
/// replies byte-identical.
struct ItemOutcome {
  std::string payload;
  bool ok = true;
  ErrorCode code = ErrorCode::kInternal;
  bool quarantined = false;
};

ItemOutcome run_item(const Request& req, const HandlerContext& ctx,
                     const Watchdog& wd) {
  ItemOutcome out;
  const std::uint64_t fp = request_fingerprint(req);
  try {
    // Breaker gate first: a quarantined fingerprint is refused without
    // touching the compute path at all (that is the point).
    if (ctx.breaker != nullptr) {
      std::string msg;
      if (ctx.breaker->quarantined(fp, &msg)) {
        out.ok = false;
        out.code = ErrorCode::kQuarantined;
        out.quarantined = true;
        out.payload = make_error_reply(req.id, ErrorCode::kQuarantined, msg);
        return out;
      }
    }
    check_liberty_ref(req.liberty);
    switch (req.op) {
      case Op::kPing: {
        JsonWriter w;
        w.add("id", req.id).add("ok", true);
        w.add("op", std::string(op_name(req.op)));
        out.payload = w.str();
        break;
      }
      case Op::kCharacterize:
        out.payload = run_characterize(req, ctx, wd);
        break;
      case Op::kDsePoint:
        out.payload = run_dse_point(req, ctx, wd);
        break;
      case Op::kAnalyze:
        out.payload = run_analyze(req, ctx, wd);
        break;
      case Op::kSleep:
        out.payload = run_sleep(req, ctx, wd);
        break;
      case Op::kStats:
      case Op::kBatch:
        // Not executable items: stats is answered by the server (it owns
        // the counters) and a batch cannot nest.
        LIMS_FAIL(ErrorCode::kInvalidConfig,
                  "op \"" << op_name(req.op)
                          << "\" is not allowed inside a batch");
    }
    if (ctx.breaker != nullptr)
      ctx.breaker->record(fp, true, ErrorCode::kInternal);
  } catch (const Error& e) {
    out.ok = false;
    out.code = e.code();
    out.payload = make_error_reply(req.id, e.code(), e.what());
    if (ctx.breaker != nullptr) ctx.breaker->record(fp, false, e.code());
  } catch (const std::exception& e) {
    out.ok = false;
    out.code = ErrorCode::kInternal;
    out.payload = make_error_reply(req.id, ErrorCode::kInternal, e.what());
    if (ctx.breaker != nullptr)
      ctx.breaker->record(fp, false, ErrorCode::kInternal);
  }
  return out;
}

/// Executes a batch frame: every item through run_item under the ONE
/// batch watchdog, with per-item error isolation. The envelope is always
/// ok:true; per-item verdicts live in the newline-joined `results`.
Handled run_batch(const Request& req, const HandlerContext& ctx,
                  const Watchdog& wd) {
  // Deliberately no batch-level DIAG_CONTEXT: the breadcrumb would leak
  // into per-item error text ("[while serve batch of N items > ...]")
  // and break the byte-identity contract with individually-sent
  // requests. Each item's own op pushes its frame inside run_item.
  Handled out;
  out.batch_items = static_cast<int>(req.batch.size());
  std::string results;
  for (const std::string& line : req.batch) {
    std::string reply;
    Request item;
    std::string perr;
    if (!parse_request(line, &item, &perr)) {
      // Byte-identical to the reply the same frame gets when sent alone
      // (the server's dispatch uses this exact text).
      reply = make_error_reply("", ErrorCode::kInvalidConfig,
                               "malformed request: " + perr);
      out.batch_failed += 1;
    } else if (cancelled(ctx)) {
      reply = make_error_reply(item.id, ErrorCode::kInterrupted,
                               "server draining; request abandoned");
      out.batch_failed += 1;
    } else if (wd.enabled() && wd.expired()) {
      // The batch budget burned out before this item even started: a
      // typed per-item refusal, and deliberately NO breaker death —
      // the deadline was spent by earlier items, not by this shape.
      reply = make_error_reply(item.id, ErrorCode::kResourceExhausted,
                               "batch budget exhausted before this item");
      out.batch_failed += 1;
    } else {
      const ItemOutcome r = run_item(item, ctx, wd);
      reply = r.payload;
      if (!r.ok) out.batch_failed += 1;
      if (r.quarantined) out.quarantined += 1;
    }
    if (!results.empty()) results += '\n';
    results += reply;
  }
  JsonWriter w;
  w.add("id", req.id).add("ok", true);
  w.add("op", std::string(op_name(req.op)));
  w.add("count", out.batch_items);
  w.add("failed", out.batch_failed);
  w.add("results", results);
  out.payload = w.str();
  return out;
}

}  // namespace

Handled handle_request(const Request& req, const HandlerContext& ctx) {
  Handled out;
  try {
    LIMS_CHECK_MSG(ctx.process != nullptr && ctx.cells != nullptr,
                   "handler context missing resident libraries");
    const Watchdog wd("serve request " + std::string(op_name(req.op)),
                      effective_deadline_seconds(req, ctx));
    if (req.op == Op::kStats) {
      // The server answers stats itself (it owns the counters); a
      // handler-level stats request reports what it can see.
      JsonWriter w;
      w.add("id", req.id).add("ok", true);
      w.add("op", std::string(op_name(req.op)));
      w.add("cache_entries",
            static_cast<std::uint64_t>(brick::BrickCache::global().size()));
      out.payload = w.str();
      return out;
    }
    if (req.op == Op::kBatch) return run_batch(req, ctx, wd);
    const ItemOutcome r = run_item(req, ctx, wd);
    out.payload = r.payload;
    out.ok = r.ok;
    out.code = r.code;
    out.quarantined = r.quarantined ? 1 : 0;
    return out;
  } catch (const Error& e) {
    out.ok = false;
    out.code = e.code();
    out.payload = make_error_reply(req.id, e.code(), e.what());
  } catch (const std::exception& e) {
    out.ok = false;
    out.code = ErrorCode::kInternal;
    out.payload = make_error_reply(req.id, ErrorCode::kInternal, e.what());
  }
  return out;
}

}  // namespace limsynth::serve
