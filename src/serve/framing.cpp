#include "serve/framing.hpp"

#include <algorithm>
#include <cstring>

namespace limsynth::serve {

namespace {

constexpr std::size_t kPrefixBytes = 4;

std::uint32_t decode_length(const char* p) {
  const auto b = [&](int i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]));
  };
  return (b(0) << 24) | (b(1) << 16) | (b(2) << 8) | b(3);
}

}  // namespace

const char* frame_status_name(FrameStatus s) {
  switch (s) {
    case FrameStatus::kFrame: return "frame";
    case FrameStatus::kNeedMore: return "need_more";
    case FrameStatus::kEof: return "eof";
    case FrameStatus::kTorn: return "torn";
    case FrameStatus::kReset: return "reset";
    case FrameStatus::kOversized: return "oversized";
    case FrameStatus::kSlowLoris: return "slow_loris";
    case FrameStatus::kOther: return "other";
  }
  return "other";
}

std::string encode_frame(const std::string& payload) {
  const auto n = static_cast<std::uint32_t>(payload.size());
  std::string out;
  out.reserve(kPrefixBytes + payload.size());
  out.push_back(static_cast<char>((n >> 24) & 0xFF));
  out.push_back(static_cast<char>((n >> 16) & 0xFF));
  out.push_back(static_cast<char>((n >> 8) & 0xFF));
  out.push_back(static_cast<char>(n & 0xFF));
  out += payload;
  return out;
}

TxErr write_frame(Conn& conn, const std::string& payload, int timeout_ms) {
  const std::string wire = encode_frame(payload);
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const TxResult r =
        conn.write_some(wire.data() + sent, wire.size() - sent, timeout_ms);
    if (!r.ok()) return r.err;
    sent += r.bytes;
  }
  return TxErr::kNone;
}

FrameStatus FrameReader::try_extract(std::string* payload) {
  if (buf_.size() < kPrefixBytes) return FrameStatus::kNeedMore;
  const std::uint32_t len = decode_length(buf_.data());
  if (len > max_frame_bytes_) return FrameStatus::kOversized;
  if (buf_.size() < kPrefixBytes + len) return FrameStatus::kNeedMore;
  payload->assign(buf_, kPrefixBytes, len);
  buf_.erase(0, kPrefixBytes + len);
  if (buf_.empty()) frame_clock_running_ = false;
  // Pipelined bytes already buffered belong to the *next* frame: restart
  // its assembly clock now.
  else
    frame_start_ = std::chrono::steady_clock::now();
  return FrameStatus::kFrame;
}

FrameStatus FrameReader::poll(Conn& conn, int wait_ms, int frame_timeout_ms,
                              std::string* payload) {
  using clock = std::chrono::steady_clock;
  const auto deadline = clock::now() + std::chrono::milliseconds(wait_ms);
  for (;;) {
    const FrameStatus st = try_extract(payload);
    if (st != FrameStatus::kNeedMore) return st;

    if (mid_frame()) {
      if (!frame_clock_running_) {
        frame_clock_running_ = true;
        frame_start_ = clock::now();
      }
      if (clock::now() - frame_start_ >
          std::chrono::milliseconds(frame_timeout_ms))
        return FrameStatus::kSlowLoris;
    }

    const auto now = clock::now();
    if (now >= deadline) return FrameStatus::kNeedMore;
    long long slice = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - now)
                          .count();
    if (mid_frame()) {
      // Never sleep past the slow-loris deadline of the frame in flight.
      const long long frame_left =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              frame_start_ + std::chrono::milliseconds(frame_timeout_ms) -
              now)
              .count();
      slice = std::min(slice, std::max<long long>(frame_left, 1));
    }

    char chunk[4096];
    const TxResult r =
        conn.read_some(chunk, sizeof(chunk), static_cast<int>(slice));
    switch (r.err) {
      case TxErr::kNone:
        buf_.append(chunk, r.bytes);
        if (buf_.size() > max_frame_bytes_ + kPrefixBytes)
          return FrameStatus::kOversized;
        break;
      case TxErr::kTimeout:
        // Retryable (EAGAIN storm / quiet wire): loop until our own
        // deadline decides between kNeedMore and kSlowLoris.
        break;
      case TxErr::kEof:
        return mid_frame() ? FrameStatus::kTorn : FrameStatus::kEof;
      case TxErr::kReset:
        return FrameStatus::kReset;
      case TxErr::kOther:
        return FrameStatus::kOther;
    }
  }
}

}  // namespace limsynth::serve
