// Length-prefixed frame assembly over a Conn.
//
// Wire format: a 4-byte big-endian payload length followed by exactly
// that many payload bytes. The reader is incremental — it accumulates
// whatever read_some() delivers (one byte at a time under FaultConn's
// short-read injection, several pipelined frames in one gulp from a fast
// client) and owns the two protocol-level failure classifications that
// pure byte I/O cannot make:
//   * kOversized — the declared length exceeds the server's bound. The
//     frame is rejected *before* any payload allocation, so a hostile
//     4-byte prefix cannot make the server reserve gigabytes.
//   * kSlowLoris — a frame that started arriving but did not complete
//     within the per-frame assembly budget. Distinct from an idle
//     connection (kNeedMore with an empty buffer), which is legitimate
//     keep-alive behavior bounded separately by the server's idle policy.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

#include "serve/transport.hpp"

namespace limsynth::serve {

/// Outcome of one FrameReader::poll() call.
enum class FrameStatus {
  kFrame = 0,   ///< *payload holds one complete frame
  kNeedMore,    ///< no complete frame yet; the wait elapsed
  kEof,         ///< orderly peer close at a frame boundary
  kTorn,        ///< peer closed mid-frame (truncated prefix or payload)
  kReset,       ///< connection dropped
  kOversized,   ///< declared length exceeds the configured bound
  kSlowLoris,   ///< frame assembly exceeded its wall-clock budget
  kOther,       ///< transport error
};

const char* frame_status_name(FrameStatus s);

/// Encodes one frame (prefix + payload) for raw-socket test clients.
std::string encode_frame(const std::string& payload);

/// Writes one frame, looping over short writes. `timeout_ms` bounds each
/// individual write_some wait (a stalled peer fails with kTimeout).
TxErr write_frame(Conn& conn, const std::string& payload, int timeout_ms);

/// Incremental frame reader; one instance per connection. Stateful:
/// bytes beyond the first complete frame stay buffered for the next
/// poll() (request pipelining), and a partially assembled frame survives
/// kNeedMore returns so the caller can interleave drain checks.
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_frame_bytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Pulls from `conn` for up to `wait_ms`, assembling at most one frame.
  /// `frame_timeout_ms` is the slow-loris bound: the wall-clock budget
  /// from a frame's first byte to its completion, across poll() calls.
  FrameStatus poll(Conn& conn, int wait_ms, int frame_timeout_ms,
                   std::string* payload);

  /// True when a frame has started arriving but is not complete — during
  /// a drain the server closes such connections instead of waiting
  /// (a half-received request is not in-flight work).
  bool mid_frame() const { return !buf_.empty(); }

 private:
  /// Extracts one complete frame from buf_ if present. Returns kFrame,
  /// kNeedMore (insufficient bytes), or kOversized.
  FrameStatus try_extract(std::string* payload);

  std::size_t max_frame_bytes_;
  std::string buf_;
  bool frame_clock_running_ = false;
  std::chrono::steady_clock::time_point frame_start_{};
};

}  // namespace limsynth::serve
