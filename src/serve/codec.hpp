// JSON request/reply codec for the characterization daemon.
//
// The dialect is the repo's journal dialect (util/jsonl.hpp): one flat
// JSON object per frame, string/number/bool fields, no nesting. Requests
// carry an `op` plus op-specific fields; every reply echoes the request's
// `id` and carries `"ok": true` with result fields, or `"ok": false`
// with the typed error taxonomy (`error_code` = util/error.hpp names,
// `error` = message) — the same codes the CLI maps to exit codes, so a
// remote caller can classify failures exactly like a local script.
//
// Parsing never throws and never trusts the input: garbage bytes,
// non-UTF-8 payloads, missing or mistyped fields all come back as
// `false` with a message that the server turns into a typed
// invalid_config reply.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace limsynth::serve {

enum class Op {
  kPing = 0,       ///< liveness check, echoes the id
  kCharacterize,   ///< compile + estimate one brick (cache-served)
  kDsePoint,       ///< evaluate one DSE partition point
  kAnalyze,        ///< full SRAM flow: synthesize + place + STA + power
  kStats,          ///< server / cache / store counters
  kSleep,          ///< hold a worker for sleep_ms (tests, load probes)
  kBatch,          ///< many items in one frame, one dispatch
};

/// Upper bound on items in one batch frame: keeps a single frame from
/// representing unbounded work the admission layer priced as one unit.
constexpr int kMaxBatchItems = 256;

const char* op_name(Op op);

/// One decoded request. Fields default to the same values the CLI
/// defaults to, so a minimal request is small.
struct Request {
  std::string id;  ///< caller correlation id, echoed verbatim (may be "")
  Op op = Op::kPing;

  /// Tenant identity for quotas/fairness. Empty means "this connection":
  /// the server substitutes its per-connection id, so an anonymous
  /// client is its own tenant rather than part of a shared bucket.
  std::string client_id;

  /// op == kBatch: the decoded item payloads, one flat JSON object per
  /// entry (wire form: the `items` field holds them newline-separated
  /// inside one JSON string — the codec splits and bounds them).
  std::vector<std::string> batch;

  // characterize / dse_point / analyze
  std::string kind = "sram8t";  ///< bitcell kind (parse_kind names)
  int words = 0;
  int bits = 0;
  int stack = 1;        ///< characterize: bricks stacked per bank
  int brick_words = 0;  ///< dse_point / analyze: rows per brick
  int banks = 1;        ///< analyze
  bool ecc = false;
  int spare_rows = 0;
  int yield_chips = 0;  ///< dse_point: defect-aware yield axis
  std::uint64_t seed = 1;
  int cycles = 50;      ///< analyze: activity-simulation cycles

  /// Optional external Liberty library the request wants characterized
  /// against. Validated up front (exists, readable, looks like a .lib):
  /// a bad path is a typed kIo/kInvalidConfig reply, never a crash.
  std::string liberty;

  /// Per-request deadline override in ms; 0 = server default. The server
  /// clamps it to its own configured maximum.
  double deadline_ms = 0.0;

  double sleep_ms = 0.0;  ///< op == kSleep
};

/// Decodes one request payload. Returns false with a human-readable
/// reason on any malformed input (not JSON, unknown op, mistyped field).
bool parse_request(const std::string& payload, Request* out,
                   std::string* error);

/// Flat JSON object writer for replies (insertion-ordered, jsonl dialect).
class JsonWriter {
 public:
  JsonWriter& add(const std::string& key, const std::string& value);
  JsonWriter& add_raw(const std::string& key, const std::string& raw);
  JsonWriter& add(const std::string& key, double value);
  JsonWriter& add(const std::string& key, std::uint64_t value);
  JsonWriter& add(const std::string& key, int value);
  JsonWriter& add(const std::string& key, bool value);
  std::string str() const;

 private:
  std::string body_;
};

/// `{"id":…,"ok":false,"error_code":…,"error":…}` — the typed error
/// reply for a failed request.
std::string make_error_reply(const std::string& id, ErrorCode code,
                             const std::string& message);

/// Load-shed reply: `ok:false`, `error_code:"resource_exhausted"` and a
/// `retry_after_ms` hint. Sent when the accept queue is full (id is
/// unknown at shed time, so it is empty) and to queued connections at
/// drain time.
std::string make_shed_reply(int retry_after_ms);

/// Per-request quota shed: like make_shed_reply but echoing the request
/// id, with `retry_after_ms` computed from the client's bucket refill.
std::string make_quota_shed_reply(const std::string& id, int retry_after_ms);

/// Drain shed: sent to requests queued (or arriving) while the server is
/// draining. Echoes the id and advertises `retry_after_ms`.
std::string make_drain_shed_reply(const std::string& id, int retry_after_ms);

/// Deadline-admission reject: the backlog estimate already exceeds the
/// request's `deadline_ms`, so it is refused at enqueue time instead of
/// burning a worker. Carries `estimated_wait_ms` and a retry hint.
std::string make_deadline_reject_reply(const std::string& id,
                                       double estimated_wait_ms,
                                       double deadline_ms);

/// Identity of the *work* a request describes: a stable hash over every
/// semantic field, excluding the caller-correlation `id` and the tenant
/// `client_id` — the same shape submitted by two tenants is one
/// fingerprint. The poison-request circuit breaker keys on this.
std::uint64_t request_fingerprint(const Request& req);

/// Decoded reply fields a client cares about (raw payload kept by the
/// caller for op-specific fields).
struct ReplyFields {
  bool ok = false;
  std::string id;
  std::string error_code;  ///< taxonomy name when !ok ("" when ok)
  std::string error;
  double retry_after_ms = -1.0;  ///< >= 0 only on shed replies
};

/// Returns false when the payload is not a well-formed reply object.
bool parse_reply(const std::string& payload, ReplyFields* out);

/// Reads a numeric reply field (for tests/bench asserting metrics).
bool reply_number(const std::string& payload, const std::string& field,
                  double* out);

}  // namespace limsynth::serve
