// Byte-stream transport with an injectable fault seam.
//
// The characterization daemon (serve/server.hpp) must survive everything a
// real network does to a long-running service: torn frames, short reads
// and writes, EAGAIN storms, clients that vanish mid-request, and clients
// that trickle one byte per second. All connection I/O therefore goes
// through the small `Conn`/`Listener`/`Transport` interfaces below, whose
// production implementation speaks POSIX sockets (Unix-domain or loopback
// TCP) with poll()-bounded waits and MSG_NOSIGNAL writes. `FaultConn`
// wraps any `Conn` and injects the transport failure modes the robustness
// tests exercise — the exact analog of util/fs.hpp's `FaultFs` for disk
// I/O: the server is tested against its failure model, not just its happy
// path.
//
// Errors are returned as TxResult values, not exceptions: the server's
// per-connection loop must classify and absorb every failure without
// unwinding past the connection it happened on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace limsynth::serve {

/// Failure classes a transport operation can report. The server maps each
/// to a distinct graceful outcome (retry / close / count-and-continue).
enum class TxErr {
  kNone = 0,
  kEof,      ///< orderly peer close (read side only)
  kTimeout,  ///< no progress within the allotted wait (incl. EAGAIN storms)
  kReset,    ///< connection dropped (ECONNRESET, EPIPE, mid-frame vanish)
  kOther,    ///< anything else (bad fd, address in use, ...)
};

const char* tx_err_name(TxErr err);

struct TxResult {
  std::size_t bytes = 0;  ///< bytes actually transferred
  TxErr err = TxErr::kNone;

  bool ok() const { return err == TxErr::kNone; }
  static TxResult good(std::size_t n) { return {n, TxErr::kNone}; }
  static TxResult fail(TxErr err) { return {0, err}; }
};

/// One bidirectional byte stream. Implementations must tolerate close()
/// being called more than once; read/write after close report kOther.
class Conn {
 public:
  virtual ~Conn() = default;

  /// Reads 1..max bytes, waiting at most `timeout_ms` for any data.
  /// Success implies bytes >= 1; an orderly peer close is kEof and an
  /// exhausted wait is kTimeout (both with bytes == 0).
  virtual TxResult read_some(char* buf, std::size_t max, int timeout_ms) = 0;

  /// Writes 1..n bytes (short writes are success with the short count —
  /// callers loop). A closed peer is kReset, never a signal.
  virtual TxResult write_some(const char* buf, std::size_t n,
                              int timeout_ms) = 0;

  virtual void close() = 0;
};

/// A bound, listening endpoint. close() is safe to call from another
/// thread and causes pending and future accept() calls to return nullptr.
class Listener {
 public:
  virtual ~Listener() = default;

  /// Waits up to `timeout_ms` for a connection; nullptr on timeout or
  /// after close(). Never throws.
  virtual std::unique_ptr<Conn> accept(int timeout_ms) = 0;

  virtual void close() = 0;

  /// Human-readable bound address ("unix:/path" or "tcp:127.0.0.1:port").
  virtual std::string address() const = 0;
};

/// Where to listen/connect: a Unix-domain socket path when `socket_path`
/// is non-empty, else loopback TCP on `port`.
struct Endpoint {
  std::string socket_path;
  int port = 0;

  std::string str() const;
};

/// Transport factory. The production implementation is process-wide and
/// stateless; tests and the in-process bench use it directly on Unix
/// sockets in the working directory.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Binds and listens. nullptr with no side effects on failure (path in
  /// use, privileged port, ...); `error` (optional) receives the reason.
  virtual std::unique_ptr<Listener> listen(const Endpoint& ep,
                                           std::string* error) = 0;

  /// Connects within `timeout_ms`; nullptr on refusal/timeout.
  virtual std::unique_ptr<Conn> connect(const Endpoint& ep,
                                        int timeout_ms) = 0;

  /// The process-wide POSIX socket implementation.
  static Transport& real();
};

/// Fault-injecting decorator. Each knob arms a one-shot or counted
/// injection consumed by the next matching operation; unarmed operations
/// pass through. Tests set the public members directly before handing the
/// connection to the server (via ServeOptions::conn_filter) or before
/// issuing a client call — this mirrors how fs::FaultFs parameterizes
/// disk-fault injection.
class FaultConn : public Conn {
 public:
  explicit FaultConn(std::unique_ptr<Conn> base) : base_(std::move(base)) {}

  // --- injection knobs -------------------------------------------------
  /// >0: every read and write transfers at most this many bytes — the
  /// short-read/short-write stress for incremental frame assembly.
  std::size_t max_chunk = 0;
  /// Next N reads report kTimeout without consuming input (a spurious
  /// EAGAIN storm; the frame reader must retry within its budget).
  int timeout_reads = 0;
  /// >= 0: once this many total bytes have been read, further reads
  /// report kReset (the peer vanished mid-frame).
  long reset_read_after = -1;
  /// >= 0: once this many total bytes have been written, further writes
  /// report kReset (the peer vanished mid-reply).
  long reset_write_after = -1;
  /// >= 0: the next write transfers only this many bytes and then the
  /// connection reports kReset on every later write — a torn frame on
  /// the wire.
  long torn_write_bytes = -1;
  /// Sleep this long before every read (a slow peer feeding the
  /// slow-loris guard).
  int delay_each_read_ms = 0;

  // --- op counters (assertable) ----------------------------------------
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;

  TxResult read_some(char* buf, std::size_t max, int timeout_ms) override;
  TxResult write_some(const char* buf, std::size_t n, int timeout_ms) override;
  void close() override { base_->close(); }

 private:
  std::unique_ptr<Conn> base_;
  long bytes_read_ = 0;
  long bytes_written_ = 0;
  bool write_broken_ = false;
};

}  // namespace limsynth::serve
