// Macro-aware floorplanning and placement (the ICC/Encounter substitute).
//
// Brick banks are placed as macros along the bottom of the block; standard
// cells are placed in the logic region above by iterative barycentric
// refinement against the fixed macro pins and I/O pads. The result feeds
// STA and power with per-net wire parasitics — the .spef the paper's flow
// extracts after physical synthesis. Because brick macros carry their
// pattern class, the floorplan is also checked for pattern legality
// (logic next to bitcell arrays is allowed precisely because both are
// pattern-construct compliant).
#pragma once

#include <vector>

#include "layout/geometry.hpp"
#include "liberty/library.hpp"
#include "netlist/bound.hpp"
#include "netlist/netlist.hpp"
#include "tech/process.hpp"

namespace limsynth::place {

struct PlaceOptions {
  double utilization = 0.70;  // logic-region cell density
  int refine_iterations = 24;
  /// Keepout (power ring + routing channel) around each macro. Costed per
  /// macro, which is what makes fine partitioning pay in area (Fig. 4b,
  /// configuration E vs D).
  double macro_halo = 4e-6;
};

struct NetParasitics {
  double wire_cap = 0.0;  // F
  double wire_res = 0.0;  // Ohm (lumped, driver to sinks)
  double length = 0.0;    // m (HPWL)
};

struct MacroPlacement {
  netlist::InstId inst = -1;
  layout::Rect rect;
};

struct Floorplan {
  double width = 0.0;   // m
  double height = 0.0;  // m
  double area = 0.0;    // m^2 (width*height)
  double cell_area = 0.0;
  double macro_area = 0.0;
  layout::Rect logic_region;
  std::vector<MacroPlacement> macros;
  /// Position of every live instance (cell center), indexed by InstId.
  std::vector<std::pair<double, double>> positions;
  /// Per-net extracted wire parasitics, indexed by NetId.
  std::vector<NetParasitics> parasitics;
  double total_wirelength = 0.0;  // m

  const NetParasitics& net(netlist::NetId id) const {
    return parasitics.at(static_cast<std::size_t>(id));
  }
};

/// Floorplans and places the bound design; extracts wire parasitics.
/// Cell identity (macro vs logic, area, dimensions) is read through the
/// binding's dense tables. Throws Error(kStaleBinding) if the netlist
/// changed since binding.
Floorplan place_design(const netlist::BoundDesign& bound,
                       const tech::Process& process,
                       const PlaceOptions& options = {});

/// Convenience: binds and places.
Floorplan place_design(const netlist::Netlist& nl,
                       const liberty::Library& lib,
                       const tech::Process& process,
                       const PlaceOptions& options = {});

}  // namespace limsynth::place
