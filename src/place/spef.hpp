// SPEF-style parasitic export.
//
// The paper's flow feeds extracted parasitics (.spef) into PrimeTime; this
// writer serializes the placement-extracted per-net wire RC in a
// SPEF-inspired format so parasitics can be persisted and re-read into
// STA/power without re-running placement.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"
#include "place/place.hpp"

namespace limsynth::place {

/// Emits per-net lumped RC (name, cap in fF, res in Ohm, length in um).
void write_spef(const netlist::Netlist& nl, const Floorplan& fp,
                std::ostream& os);
std::string to_spef_string(const netlist::Netlist& nl, const Floorplan& fp);

/// Parses parasitics written by write_spef back into a vector indexed by
/// NetId (net names are resolved against `nl`). Nets absent from the file
/// get zero parasitics. Throws limsynth::Error on malformed input.
std::vector<NetParasitics> parse_spef(const netlist::Netlist& nl,
                                      const std::string& text);

}  // namespace limsynth::place
