#include "place/place.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>

#include "util/error.hpp"

namespace limsynth::place {

namespace {

using netlist::InstId;
using netlist::Netlist;
using netlist::NetId;

/// Splits "RWL[17]" into base/index; index -1 for scalar pins.
std::pair<std::string, int> split_pin(const std::string& pin) {
  const auto pos = pin.find('[');
  if (pos == std::string::npos) return {pin, -1};
  return {pin.substr(0, pos), std::atoi(pin.c_str() + pos + 1)};
}

/// Physical pin positions on placed macros: wordline pins climb the left
/// edge (their row's height), data pins spread along the top/bottom edges.
/// This is what makes a tall stacked bank's wordline routing long — the
/// Fig. 4b config-D decode penalty.
class MacroPins {
 public:
  MacroPins(const Netlist& nl, const std::vector<MacroPlacement>& macros) {
    for (const auto& m : macros) {
      auto& info = info_[m.inst];
      info.rect = m.rect;
      for (const auto& c : nl.instance(m.inst).conns) {
        const auto [base, index] = split_pin(c.pin);
        if (index >= 0)
          info.max_index[base] = std::max(info.max_index[base], index);
      }
    }
  }

  bool is_macro(InstId inst) const { return info_.count(inst) > 0; }

  std::pair<double, double> pin_pos(InstId inst, const std::string& pin) const {
    const auto it = info_.find(inst);
    LIMS_CHECK(it != info_.end());
    const auto& info = it->second;
    const layout::Rect& r = info.rect;
    const auto [base, index] = split_pin(pin);
    if (index < 0) return {r.x0, r.y0};  // CK and scalar pins: corner
    const auto mi = info.max_index.find(base);
    const double frac =
        (mi == info.max_index.end() || mi->second == 0)
            ? 0.5
            : (static_cast<double>(index) + 0.5) / (mi->second + 1);
    // The brick stack runs along the macro's long axis; wordline pins
    // spread along it (their row's physical position), data pins sit at
    // the periphery end of the stack.
    const bool horizontal = r.width() >= r.height();
    if (base == "RWL" || base == "WWL") {
      return horizontal
                 ? std::pair{r.x0 + frac * r.width(), r.y0}
                 : std::pair{r.x0, r.y0 + frac * r.height()};
    }
    // DO/MATCH/WDATA/SDATA: at the stack's periphery end, spread across
    // the short dimension.
    return horizontal ? std::pair{r.x0, r.y0 + frac * r.height()}
                      : std::pair{r.x0 + frac * r.width(), r.y0};
  }

 private:
  struct Info {
    layout::Rect rect;
    std::map<std::string, int> max_index;
  };
  std::map<InstId, Info> info_;
};

}  // namespace

Floorplan place_design(const netlist::BoundDesign& bd,
                       const tech::Process& process,
                       const PlaceOptions& opt) {
  bd.check_fresh();
  const Netlist& nl = bd.netlist();
  Floorplan fp;
  const std::size_t n_inst = nl.instance_storage_size();
  fp.positions.assign(n_inst, {0.0, 0.0});

  // ---------------------------------------------------------- inventory
  // Macros may be rotated; the floorplanner lays their long side along the
  // bottom band to keep the block close to square.
  std::vector<InstId> macro_ids;
  std::vector<std::pair<double, double>> macro_wh;  // placed (w, h)
  double macro_row_width = 0.0, macro_max_height = 0.0;
  for (std::size_t i = 0; i < n_inst; ++i) {
    const auto id = static_cast<InstId>(i);
    if (!nl.is_live(id)) continue;
    const liberty::LibCell& cell = bd.cell(id);
    if (cell.is_macro) {
      macro_ids.push_back(id);
      fp.macro_area += cell.area;
      double w = cell.width > 0 ? cell.width : std::sqrt(cell.area);
      double h = cell.height > 0 ? cell.height : std::sqrt(cell.area);
      if (h > w) std::swap(w, h);  // rotate: long side horizontal
      macro_wh.emplace_back(w, h);
      macro_row_width += w + 2.0 * opt.macro_halo;
      macro_max_height = std::max(macro_max_height, h);
    } else {
      fp.cell_area += cell.area;
    }
  }

  // --------------------------------------------------------- floorplan
  const double logic_area = fp.cell_area / opt.utilization;
  double width = std::max(macro_row_width, std::sqrt(std::max(logic_area, 1e-12)));
  const double logic_height = logic_area / width;
  const double macro_band =
      macro_ids.empty() ? 0.0 : macro_max_height + 2.0 * opt.macro_halo;
  fp.width = width;
  fp.height = macro_band + logic_height;
  fp.area = fp.width * fp.height;
  fp.logic_region =
      layout::Rect{0.0, macro_band, fp.width, fp.height};

  // Macros across the bottom band, spread evenly.
  double cursor = opt.macro_halo;
  const double spread =
      macro_ids.empty()
          ? 0.0
          : std::max(0.0, (fp.width - macro_row_width) /
                              static_cast<double>(macro_ids.size()));
  for (std::size_t m = 0; m < macro_ids.size(); ++m) {
    const InstId id = macro_ids[m];
    const auto [w, h] = macro_wh[m];
    fp.macros.push_back({id, layout::Rect{cursor, opt.macro_halo, cursor + w,
                                          opt.macro_halo + h}});
    fp.positions[static_cast<std::size_t>(id)] = {cursor + w / 2.0,
                                                  opt.macro_halo + h / 2.0};
    cursor += w + 2.0 * opt.macro_halo + spread;
  }

  // ------------------------------------------------ barycentric placement
  // Fixed anchors: macro pins (macro center), primary inputs on the left
  // edge, outputs on the right edge.
  const double cx = fp.width / 2.0;
  const double cy = macro_band + logic_height / 2.0;
  for (std::size_t i = 0; i < n_inst; ++i) {
    const auto id = static_cast<InstId>(i);
    if (!nl.is_live(id)) continue;
    if (!bd.cell(id).is_macro) fp.positions[i] = {cx, cy};
  }

  // Port anchor positions.
  std::vector<std::pair<double, double>> port_pos(nl.nets().size(),
                                                  {-1.0, -1.0});
  {
    int in_count = 0, out_count = 0;
    for (const auto& p : nl.ports())
      (p.dir == netlist::PortDir::kInput ? in_count : out_count)++;
    int in_i = 0, out_i = 0;
    for (const auto& p : nl.ports()) {
      if (p.dir == netlist::PortDir::kInput) {
        port_pos[static_cast<std::size_t>(p.net)] = {
            0.0, fp.height * (in_i + 1.0) / (in_count + 1.0)};
        ++in_i;
      } else {
        port_pos[static_cast<std::size_t>(p.net)] = {
            fp.width, fp.height * (out_i + 1.0) / (out_count + 1.0)};
        ++out_i;
      }
    }
  }

  const MacroPins macro_pins(nl, fp.macros);
  auto endpoint_pos = [&](InstId inst,
                          const std::string& pin) -> std::pair<double, double> {
    if (macro_pins.is_macro(inst)) return macro_pins.pin_pos(inst, pin);
    return fp.positions[static_cast<std::size_t>(inst)];
  };

  for (int iter = 0; iter < opt.refine_iterations; ++iter) {
    for (std::size_t i = 0; i < n_inst; ++i) {
      const auto id = static_cast<InstId>(i);
      if (!nl.is_live(id)) continue;
      if (bd.cell(id).is_macro) continue;  // fixed
      double sx = 0.0, sy = 0.0;
      int n = 0;
      for (const auto& conn : nl.instance(id).conns) {
        if (conn.net == nl.clock()) continue;  // ideal clock: no pull
        // Pull toward the driver and all other sinks of each connected net.
        const auto drv = nl.driver_of(conn.net);
        if (drv.inst >= 0 && drv.inst != id) {
          const auto [px, py] = endpoint_pos(drv.inst, drv.pin);
          sx += px;
          sy += py;
          ++n;
        }
        for (const auto& sink : nl.sinks_of(conn.net)) {
          if (sink.inst == id) continue;
          const auto [px, py] = endpoint_pos(sink.inst, sink.pin);
          sx += px;
          sy += py;
          ++n;
        }
        const auto& pp = port_pos[static_cast<std::size_t>(conn.net)];
        if (pp.first >= 0.0) {
          sx += pp.first;
          sy += pp.second;
          ++n;
        }
      }
      if (n == 0) continue;
      double nx = sx / n, ny = sy / n;
      // Clamp into the logic region.
      nx = std::clamp(nx, fp.logic_region.x0, fp.logic_region.x1);
      ny = std::clamp(ny, fp.logic_region.y0, fp.logic_region.y1);
      fp.positions[i] = {nx, ny};
    }
  }

  // ----------------------------------------------------------- extraction
  fp.parasitics.assign(nl.nets().size(), NetParasitics{});
  for (NetId net = 0; net < static_cast<NetId>(nl.nets().size()); ++net) {
    double x0 = 1e9, x1 = -1e9, y0 = 1e9, y1 = -1e9;
    int endpoints = 0;
    auto touch = [&](double x, double y) {
      x0 = std::min(x0, x);
      x1 = std::max(x1, x);
      y0 = std::min(y0, y);
      y1 = std::max(y1, y);
      ++endpoints;
    };
    const auto drv = nl.driver_of(net);
    if (drv.inst >= 0) {
      const auto [px, py] = endpoint_pos(drv.inst, drv.pin);
      touch(px, py);
    }
    for (const auto& sink : nl.sinks_of(net)) {
      const auto [px, py] = endpoint_pos(sink.inst, sink.pin);
      touch(px, py);
    }
    const auto& pp = port_pos[static_cast<std::size_t>(net)];
    if (pp.first >= 0.0) touch(pp.first, pp.second);

    auto& para = fp.parasitics[static_cast<std::size_t>(net)];
    if (endpoints >= 2) {
      para.length = (x1 - x0) + (y1 - y0);
      // Minimum escape length even for abutting cells.
      para.length = std::max(para.length, 2e-6);
      para.wire_cap = process.c_wire * para.length;
      para.wire_res = process.r_wire * para.length;
      fp.total_wirelength += para.length;
    }
  }
  return fp;
}

Floorplan place_design(const Netlist& nl, const liberty::Library& lib,
                       const tech::Process& process,
                       const PlaceOptions& opt) {
  return place_design(netlist::BoundDesign(nl, lib), process, opt);
}

}  // namespace limsynth::place
