#include "place/spef.hpp"

#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace limsynth::place {

void write_spef(const netlist::Netlist& nl, const Floorplan& fp,
                std::ostream& os) {
  os << "*SPEF \"limsynth lumped\"\n";
  os << "*DESIGN " << nl.name() << "\n";
  os << "*C_UNIT fF\n*R_UNIT OHM\n*L_UNIT um\n";
  for (netlist::NetId net = 0; net < static_cast<netlist::NetId>(nl.nets().size());
       ++net) {
    const NetParasitics& p = fp.net(net);
    if (p.wire_cap <= 0.0 && p.wire_res <= 0.0) continue;
    os << "*D_NET " << nl.net_name(net) << ' ' << p.wire_cap * 1e15 << ' '
       << p.wire_res << ' ' << p.length * 1e6 << "\n";
  }
  os << "*END\n";
}

std::string to_spef_string(const netlist::Netlist& nl, const Floorplan& fp) {
  std::ostringstream os;
  write_spef(nl, fp, os);
  return os.str();
}

std::vector<NetParasitics> parse_spef(const netlist::Netlist& nl,
                                      const std::string& text) {
  std::vector<NetParasitics> out(nl.nets().size());
  std::istringstream is(text);
  std::string line;
  bool saw_header = false, saw_end = false;
  while (std::getline(is, line)) {
    if (line.rfind("*SPEF", 0) == 0) {
      saw_header = true;
      continue;
    }
    if (line.rfind("*END", 0) == 0) {
      saw_end = true;
      break;
    }
    if (line.rfind("*D_NET", 0) != 0) continue;
    std::istringstream ls(line);
    std::string tag, net_name;
    double cap_ff = 0, res = 0, len_um = 0;
    ls >> tag >> net_name >> cap_ff >> res >> len_um;
    LIMS_CHECK_MSG(!ls.fail(), "spef parse: bad line '" << line << "'");
    const netlist::NetId net = nl.find_net(net_name);
    LIMS_CHECK_MSG(net != netlist::kNoNet,
                   "spef parse: unknown net " << net_name);
    auto& p = out[static_cast<std::size_t>(net)];
    p.wire_cap = cap_ff * 1e-15;
    p.wire_res = res;
    p.length = len_um * 1e-6;
  }
  LIMS_CHECK_MSG(saw_header && saw_end, "spef parse: missing header or *END");
  return out;
}

}  // namespace limsynth::place
