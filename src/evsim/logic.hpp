// Three-valued logic for the event-driven engine.
//
// The settle engine is two-valued (everything powers up to 0); the event
// engine models uninitialized state explicitly: every net, flop and brick
// output is X until something drives it, and X propagates through gates
// with Kleene semantics (a controlling 0 on a NAND still forces a 1, an X
// select on a mux resolves only when both data inputs agree).
#pragma once

#include <cstdint>

#include "tech/stdcell.hpp"
#include "util/error.hpp"

namespace limsynth::evsim {

enum class Logic : std::uint8_t { k0 = 0, k1 = 1, kX = 2 };

inline Logic from_bool(bool b) { return b ? Logic::k1 : Logic::k0; }
inline bool is_x(Logic v) { return v == Logic::kX; }
/// X coerces to 0 (the adapter contract for behavioral macro models).
inline bool to_bool(Logic v) { return v == Logic::k1; }
inline char logic_char(Logic v) {
  return v == Logic::k0 ? '0' : (v == Logic::k1 ? '1' : 'x');
}

inline Logic logic_not(Logic a) {
  if (a == Logic::kX) return Logic::kX;
  return a == Logic::k0 ? Logic::k1 : Logic::k0;
}

inline Logic logic_and(Logic a, Logic b) {
  if (a == Logic::k0 || b == Logic::k0) return Logic::k0;
  if (a == Logic::kX || b == Logic::kX) return Logic::kX;
  return Logic::k1;
}

inline Logic logic_or(Logic a, Logic b) {
  if (a == Logic::k1 || b == Logic::k1) return Logic::k1;
  if (a == Logic::kX || b == Logic::kX) return Logic::kX;
  return Logic::k0;
}

inline Logic logic_xor(Logic a, Logic b) {
  if (a == Logic::kX || b == Logic::kX) return Logic::kX;
  return from_bool(a != b);
}

/// Mux with an X select resolves when both data inputs agree.
inline Logic logic_mux(Logic a, Logic b, Logic sel) {
  if (sel == Logic::kX) return a == b ? a : Logic::kX;
  return sel == Logic::k1 ? b : a;
}

/// Evaluates a combinational cell function over inputs in pin order
/// (A, B, C, D) — the same pin convention as netlist::Simulator.
inline Logic eval_func(tech::CellFunc func, const Logic* in, int nin) {
  using tech::CellFunc;
  auto all_and = [&] {
    Logic v = Logic::k1;
    for (int i = 0; i < nin; ++i) v = logic_and(v, in[i]);
    return v;
  };
  auto all_or = [&] {
    Logic v = Logic::k0;
    for (int i = 0; i < nin; ++i) v = logic_or(v, in[i]);
    return v;
  };
  switch (func) {
    case CellFunc::kInv: return logic_not(in[0]);
    case CellFunc::kBuf: return in[0];
    case CellFunc::kNand2:
    case CellFunc::kNand3:
    case CellFunc::kNand4: return logic_not(all_and());
    case CellFunc::kNor2:
    case CellFunc::kNor3: return logic_not(all_or());
    case CellFunc::kAnd2: return all_and();
    case CellFunc::kOr2: return all_or();
    case CellFunc::kXor2: return logic_xor(in[0], in[1]);
    case CellFunc::kXnor2: return logic_not(logic_xor(in[0], in[1]));
    // Pin convention from netlist::Simulator: select on C.
    case CellFunc::kMux2: return logic_mux(in[0], in[1], in[2]);
    case CellFunc::kAoi21:
      return logic_not(logic_or(logic_and(in[0], in[1]), in[2]));
    case CellFunc::kOai21:
      return logic_not(logic_and(logic_or(in[0], in[1]), in[2]));
    case CellFunc::kTie0: return Logic::k0;
    case CellFunc::kTie1: return Logic::k1;
    default:
      LIMS_UNREACHABLE("sequential cell in combinational eval");
  }
}

}  // namespace limsynth::evsim
