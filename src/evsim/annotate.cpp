#include "evsim/annotate.hpp"

#include <algorithm>

#include "netlist/sim.hpp"
#include "sta/loads.hpp"
#include "synth/synth.hpp"
#include "util/error.hpp"

namespace limsynth::evsim {

namespace {

using netlist::InstId;
using netlist::Netlist;
using netlist::NetId;
using synth::pin_base;

// Input pin order shared with eval_func / netlist::Simulator.
constexpr const char* kInputPins[4] = {"A", "B", "C", "D"};

}  // namespace

TimingAnnotation annotate_delays(const Netlist& nl,
                                 const liberty::Library& lib,
                                 const tech::StdCellLib& cells,
                                 const AnnotateOptions& opt) {
  sta::NetLoadOptions load_opt;
  load_opt.floorplan = opt.floorplan;
  load_opt.prelayout_cap_per_sink = opt.prelayout_cap_per_sink;
  load_opt.output_load = opt.output_load;
  const sta::NetLoads loads = sta::compute_net_loads(nl, lib, load_opt);

  std::map<std::string, tech::CellFunc> func_by_stem;
  for (const auto& c : cells.cells())
    func_by_stem[netlist::cell_stem(c.name)] = c.func;

  // STA records the worst slew on each net; reuse it for arc lookups so
  // the delays this engine replays are the ones STA summed. Nets STA
  // never reached (constants) fall back to the default.
  auto slew_of = [&](NetId net) {
    const auto n = static_cast<std::size_t>(net);
    if (opt.sta != nullptr && n < opt.sta->net_slew.size() &&
        n < opt.sta->net_arrival.size() && opt.sta->net_arrival[n] >= 0.0)
      return opt.sta->net_slew[n];
    return opt.default_slew;
  };
  auto wire_of = [&](NetId net) {
    return loads.wire_delay[static_cast<std::size_t>(net)];
  };
  auto load_of = [&](NetId net) {
    return loads.load[static_cast<std::size_t>(net)];
  };

  TimingAnnotation ann;
  const std::size_t n_inst = nl.instance_storage_size();
  for (std::size_t i = 0; i < n_inst; ++i) {
    const auto id = static_cast<InstId>(i);
    if (!nl.is_live(id)) continue;
    const auto& inst = nl.instance(id);
    const liberty::LibCell& cell = lib.cell(inst.cell);
    const std::string clock_pin =
        cell.clock_pin.empty() ? "CK" : cell.clock_pin;

    if (cell.is_macro || cell.sequential) {
      // Launch side: CK -> output arcs. STA adds a net's wire delay on
      // the consumption side, so launch delays carry the arc only.
      if (cell.is_macro) {
        MacroInfo mi;
        mi.inst = id;
        for (const auto& c : inst.conns) {
          if (!Netlist::is_output_pin(c.pin)) continue;
          const liberty::TimingArc* arc =
              cell.find_arc(clock_pin, pin_base(c.pin));
          LIMS_CHECK_MSG(arc != nullptr, "no clock arc to " << c.pin
                                                            << " on "
                                                            << cell.name);
          mi.outputs.push_back(
              {c.pin, c.net,
               to_fs(arc->delay.lookup(sta::kClockSlew, load_of(c.net)))});
        }
        ann.macros.push_back(std::move(mi));
      } else {
        const auto fit = func_by_stem.find(netlist::cell_stem(inst.cell));
        LIMS_CHECK_MSG(fit != func_by_stem.end(),
                       "unknown cell " << inst.cell);
        if (fit->second != tech::CellFunc::kDff &&
            fit->second != tech::CellFunc::kDffEn) {
          throw Error(ErrorCode::kInvalidConfig,
                      "event simulation supports DFF/DFFE sequentials only, "
                      "got " + inst.cell + " on " + inst.name);
        }
        FlopInfo fi;
        fi.inst = id;
        const NetId* d = inst.find_pin("D");
        const NetId* q = inst.find_pin("Q");
        LIMS_CHECK_MSG(d != nullptr && q != nullptr,
                       "flop " << inst.name << " missing D/Q pins");
        fi.d = *d;
        fi.q = *q;
        if (fit->second == tech::CellFunc::kDffEn) {
          const NetId* en = inst.find_pin("EN");
          LIMS_CHECK_MSG(en != nullptr,
                         "DFFE " << inst.name << " missing EN pin");
          fi.en = *en;
        }
        const liberty::TimingArc* arc = cell.find_arc(clock_pin, "Q");
        LIMS_CHECK_MSG(arc != nullptr,
                       "no CK->Q arc on " << cell.name);
        fi.clk_to_q_fs =
            to_fs(arc->delay.lookup(sta::kClockSlew, load_of(fi.q)));
        ann.flops.push_back(fi);
      }
      // Capture side: every constrained input pin is an endpoint. The
      // window folds in the data net's wire delay (STA adds it at the
      // endpoint) and the clock uncertainty.
      for (const auto& c : inst.conns) {
        if (Netlist::is_output_pin(c.pin)) continue;
        if (c.net == nl.clock()) continue;
        const liberty::Constraint* con =
            cell.find_constraint(pin_base(c.pin));
        if (con == nullptr) continue;
        ann.endpoints.push_back(
            {inst.name + "/" + c.pin, c.net,
             to_fs(wire_of(c.net) + con->setup + opt.clock_uncertainty)});
      }
      continue;
    }

    // Combinational gate (or tie constant).
    const auto fit = func_by_stem.find(netlist::cell_stem(inst.cell));
    LIMS_CHECK_MSG(fit != func_by_stem.end(), "unknown cell " << inst.cell);
    GateInfo gi;
    gi.inst = id;
    gi.func = fit->second;
    gi.nin = tech::cell_func_inputs(gi.func);
    LIMS_CHECK_MSG(gi.nin <= 4, "too many inputs on " << inst.cell);
    const NetId* out = inst.find_pin("Y");
    LIMS_CHECK_MSG(out != nullptr, "gate " << inst.name << " missing Y pin");
    gi.out = *out;
    const double out_load = load_of(gi.out);
    TimeFs worst = 0;
    std::vector<int> missing;
    for (int k = 0; k < gi.nin; ++k) {
      const NetId* in = inst.find_pin(kInputPins[k]);
      LIMS_CHECK_MSG(in != nullptr, "gate " << inst.name << " missing pin "
                                            << kInputPins[k]);
      gi.in[k] = *in;
      const liberty::TimingArc* arc = cell.find_arc(kInputPins[k], "Y");
      if (arc == nullptr) {
        missing.push_back(k);  // non-timing pin: pessimize below
        continue;
      }
      gi.delay_fs[k] =
          to_fs(wire_of(*in) + arc->delay.lookup(slew_of(*in), out_load));
      worst = std::max(worst, gi.delay_fs[k]);
    }
    for (int k : missing)
      gi.delay_fs[k] = std::max<TimeFs>(worst, to_fs(wire_of(gi.in[k]))) + 1;
    ann.gates.push_back(gi);
  }

  for (const auto& port : nl.ports()) {
    if (port.dir != netlist::PortDir::kOutput) continue;
    ann.endpoints.push_back(
        {"PO " + port.name, port.net, to_fs(opt.clock_uncertainty)});
  }
  return ann;
}

}  // namespace limsynth::evsim
