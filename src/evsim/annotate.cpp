#include "evsim/annotate.hpp"

#include <algorithm>

#include "netlist/sim.hpp"
#include "sta/loads.hpp"
#include "util/error.hpp"

namespace limsynth::evsim {

namespace {

using netlist::BoundConn;
using netlist::BoundDesign;
using netlist::InstId;
using netlist::LibCellId;
using netlist::Netlist;
using netlist::NetId;
using netlist::PinId;

// Input pin order shared with eval_func / netlist::Simulator.
constexpr const char* kInputPins[4] = {"A", "B", "C", "D"};

}  // namespace

TimingAnnotation annotate_delays(const BoundDesign& bd,
                                 const tech::StdCellLib& cells,
                                 const AnnotateOptions& opt) {
  bd.check_fresh();
  const Netlist& nl = bd.netlist();

  sta::NetLoadOptions load_opt;
  load_opt.floorplan = opt.floorplan;
  load_opt.prelayout_cap_per_sink = opt.prelayout_cap_per_sink;
  load_opt.output_load = opt.output_load;
  const sta::NetLoads loads = sta::compute_net_loads(bd, load_opt);

  // Cell function per LibCellId, resolved once against the StdCellLib
  // (the library holds every drive variant, so this is a per-cell, not
  // per-instance, resolution).
  std::vector<int> func_of(bd.cell_count(), -1);  // -1 = no CellFunc (macro)
  {
    std::unordered_map<std::string, tech::CellFunc> func_by_stem;
    func_by_stem.reserve(cells.cells().size());
    for (const auto& c : cells.cells())
      func_by_stem[netlist::cell_stem(c.name)] = c.func;
    for (std::size_t ci = 0; ci < bd.cell_count(); ++ci) {
      const auto it = func_by_stem.find(
          netlist::cell_stem(bd.lib_cell(static_cast<LibCellId>(ci)).name));
      if (it != func_by_stem.end()) func_of[ci] = static_cast<int>(it->second);
    }
  }

  // Interned pin ids for the conventional pin names (kNoPin when the
  // design never uses one).
  PinId in_pid[4];
  for (int k = 0; k < 4; ++k) in_pid[k] = bd.pin_id(kInputPins[k]);
  const PinId d_pid = bd.pin_id("D");
  const PinId q_pid = bd.pin_id("Q");
  const PinId en_pid = bd.pin_id("EN");
  const PinId y_pid = bd.pin_id("Y");

  // STA records the worst slew on each net; reuse it for arc lookups so
  // the delays this engine replays are the ones STA summed. Nets STA
  // never reached (constants) fall back to the default.
  auto slew_of = [&](NetId net) {
    const auto n = static_cast<std::size_t>(net);
    if (opt.sta != nullptr && n < opt.sta->net_slew.size() &&
        n < opt.sta->net_arrival.size() && opt.sta->net_arrival[n] >= 0.0)
      return opt.sta->net_slew[n];
    return opt.default_slew;
  };
  auto wire_of = [&](NetId net) {
    return loads.wire_delay[static_cast<std::size_t>(net)];
  };
  auto load_of = [&](NetId net) {
    return loads.load[static_cast<std::size_t>(net)];
  };

  TimingAnnotation ann;
  const std::size_t n_inst = bd.instance_count();
  for (std::size_t i = 0; i < n_inst; ++i) {
    const auto id = static_cast<InstId>(i);
    if (!bd.is_live(id)) continue;
    const LibCellId cid = bd.cell_id(id);
    const liberty::LibCell& cell = bd.lib_cell(cid);
    const auto conns = bd.conns(id);

    if (cell.is_macro || cell.sequential) {
      // Launch side: CK -> output arcs. STA adds a net's wire delay on
      // the consumption side, so launch delays carry the arc only.
      if (cell.is_macro) {
        MacroInfo mi;
        mi.inst = id;
        for (const BoundConn& c : conns) {
          if (!c.is_output) continue;
          const liberty::TimingArc* arc = bd.clock_arc(cid, c.slot);
          LIMS_CHECK_MSG(arc != nullptr, "no clock arc to "
                                             << bd.pin_name(c.pin) << " on "
                                             << cell.name);
          mi.outputs.push_back(
              {bd.pin_name(c.pin), c.net,
               to_fs(arc->delay.lookup(sta::kClockSlew, load_of(c.net)))});
        }
        ann.macros.push_back(std::move(mi));
      } else {
        const int func = func_of[static_cast<std::size_t>(cid)];
        LIMS_CHECK_MSG(func >= 0,
                       "unknown cell " << nl.instance(id).cell);
        if (static_cast<tech::CellFunc>(func) != tech::CellFunc::kDff &&
            static_cast<tech::CellFunc>(func) != tech::CellFunc::kDffEn) {
          throw Error(ErrorCode::kInvalidConfig,
                      "event simulation supports DFF/DFFE sequentials only, "
                      "got " + nl.instance(id).cell + " on " +
                          nl.instance(id).name);
        }
        FlopInfo fi;
        fi.inst = id;
        fi.d = bd.pin_net(id, d_pid);
        fi.q = bd.pin_net(id, q_pid);
        LIMS_CHECK_MSG(fi.d != netlist::kNoNet && fi.q != netlist::kNoNet,
                       "flop " << nl.instance(id).name
                               << " missing D/Q pins");
        if (static_cast<tech::CellFunc>(func) == tech::CellFunc::kDffEn) {
          fi.en = bd.pin_net(id, en_pid);
          LIMS_CHECK_MSG(fi.en != netlist::kNoNet,
                         "DFFE " << nl.instance(id).name << " missing EN pin");
        }
        const liberty::TimingArc* arc = nullptr;
        for (const BoundConn& c : conns) {
          if (c.is_output && c.pin == q_pid) {
            arc = bd.clock_arc(cid, c.slot);
            break;
          }
        }
        LIMS_CHECK_MSG(arc != nullptr,
                       "no CK->Q arc on " << cell.name);
        fi.clk_to_q_fs =
            to_fs(arc->delay.lookup(sta::kClockSlew, load_of(fi.q)));
        ann.flops.push_back(fi);
      }
      // Capture side: every constrained input pin is an endpoint. The
      // window folds in the data net's wire delay (STA adds it at the
      // endpoint) and the clock uncertainty.
      for (const BoundConn& c : conns) {
        if (c.is_output) continue;
        if (c.net == nl.clock()) continue;
        const liberty::Constraint* con = bd.constraint(cid, c.slot);
        if (con == nullptr) continue;
        ann.endpoints.push_back(
            {nl.instance(id).name + "/" + bd.pin_name(c.pin), c.net,
             to_fs(wire_of(c.net) + con->setup + opt.clock_uncertainty)});
      }
      continue;
    }

    // Combinational gate (or tie constant).
    const int func = func_of[static_cast<std::size_t>(cid)];
    LIMS_CHECK_MSG(func >= 0, "unknown cell " << nl.instance(id).cell);
    GateInfo gi;
    gi.inst = id;
    gi.func = static_cast<tech::CellFunc>(func);
    gi.nin = tech::cell_func_inputs(gi.func);
    LIMS_CHECK_MSG(gi.nin <= 4, "too many inputs on " << nl.instance(id).cell);
    // One pass over the bound conns resolves the output and each input's
    // position (PinId compares, no string scans).
    int in_slot[4] = {-1, -1, -1, -1};
    int out_slot = -1;
    for (const BoundConn& c : conns) {
      if (c.is_output) {
        if (c.pin == y_pid) {
          gi.out = c.net;
          out_slot = c.slot;
        }
        continue;
      }
      for (int k = 0; k < gi.nin; ++k) {
        if (c.pin == in_pid[k]) {
          gi.in[k] = c.net;
          in_slot[k] = c.slot;
          break;
        }
      }
    }
    LIMS_CHECK_MSG(gi.out != netlist::kNoNet,
                   "gate " << nl.instance(id).name << " missing Y pin");
    const double out_load = load_of(gi.out);
    TimeFs worst = 0;
    std::vector<int> missing;
    for (int k = 0; k < gi.nin; ++k) {
      LIMS_CHECK_MSG(gi.in[k] != netlist::kNoNet,
                     "gate " << nl.instance(id).name << " missing pin "
                             << kInputPins[k]);
      const liberty::TimingArc* arc = bd.arc(cid, in_slot[k], out_slot);
      if (arc == nullptr) {
        missing.push_back(k);  // non-timing pin: pessimize below
        continue;
      }
      gi.delay_fs[k] = to_fs(wire_of(gi.in[k]) +
                             arc->delay.lookup(slew_of(gi.in[k]), out_load));
      worst = std::max(worst, gi.delay_fs[k]);
    }
    for (int k : missing)
      gi.delay_fs[k] = std::max<TimeFs>(worst, to_fs(wire_of(gi.in[k]))) + 1;
    ann.gates.push_back(gi);
  }

  for (const auto& port : nl.ports()) {
    if (port.dir != netlist::PortDir::kOutput) continue;
    ann.endpoints.push_back(
        {"PO " + port.name, port.net, to_fs(opt.clock_uncertainty)});
  }
  return ann;
}

TimingAnnotation annotate_delays(const Netlist& nl,
                                 const liberty::Library& lib,
                                 const tech::StdCellLib& cells,
                                 const AnnotateOptions& opt) {
  return annotate_delays(BoundDesign(nl, lib), cells, opt);
}

}  // namespace limsynth::evsim
