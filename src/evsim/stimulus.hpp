// Stimulus file parsing for `limsynth simulate` replay.
//
// A stimulus file is a line-oriented text format describing per-cycle
// primary-input changes, replayed verbatim on either simulation engine
// through evsim::StimulusTrace:
//
//   # comments and blank lines are ignored
//   cycle 0          # open cycle 0 (cycle numbers strictly increase)
//   set wen 1        # scalar net by name, value 0 or 1
//   bus wdata 0x2a   # bus by base name (nets base[0..w)), hex or decimal
//   cycle 5
//   set wen 0
//
// The parser is hardened against malformed and adversarial input: every
// token is bounds-checked and every failure throws a typed
// limsynth::Error (kInvalidConfig for bad content, kIo for unreadable
// files) naming the line number — never UB, never a crash, never an
// unbounded allocation from a hostile cycle count or line length.
#pragma once

#include <iosfwd>
#include <string>

#include "evsim/crosscheck.hpp"
#include "netlist/netlist.hpp"

namespace limsynth::evsim {

struct StimulusParseOptions {
  /// Longest accepted line; longer input is rejected (kInvalidConfig), not
  /// buffered — a 10 GB line must not become a 10 GB string.
  std::size_t max_line_bytes = 4096;
  /// Highest accepted cycle number: `cycle 9999999999` would otherwise
  /// allocate a trace entry per cycle up to it.
  std::uint64_t max_cycle = 1u << 20;
  /// Widest accepted bus (values are carried in a uint64_t).
  std::size_t max_bus_bits = 64;
};

/// Parses a stimulus stream against `nl` (net names must resolve).
/// Throws Error(kInvalidConfig) with the offending line number on any
/// malformed directive, unknown net, out-of-range value or cycle.
StimulusTrace parse_stimulus(std::istream& in, const netlist::Netlist& nl,
                             const StimulusParseOptions& options = {});

/// Opens and parses `path`; Error(kIo) when the file cannot be read.
StimulusTrace load_stimulus(const std::string& path,
                            const netlist::Netlist& nl,
                            const StimulusParseOptions& options = {});

}  // namespace limsynth::evsim
