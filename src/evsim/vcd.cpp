#include "evsim/vcd.hpp"

#include "util/error.hpp"

namespace limsynth::evsim {

namespace {

// Shortest base-94 identifier over VCD's printable range '!'..'~'.
std::string id_code(std::size_t n) {
  std::string s;
  do {
    s.push_back(static_cast<char>('!' + n % 94));
    n /= 94;
  } while (n != 0);
  return s;
}

}  // namespace

VcdWriter::VcdWriter(std::ostream& os, const netlist::Netlist& nl)
    : os_(os), nl_(nl) {
  ids_.reserve(nl.nets().size());
  for (std::size_t n = 0; n < nl.nets().size(); ++n)
    ids_.push_back(id_code(n));
}

void VcdWriter::write_header(const std::vector<Logic>& values) {
  LIMS_CHECK(values.size() == ids_.size());
  os_ << "$version limsynth evsim $end\n";
  os_ << "$timescale 1fs $end\n";
  os_ << "$scope module " << nl_.name() << " $end\n";
  for (std::size_t n = 0; n < ids_.size(); ++n) {
    os_ << "$var wire 1 " << ids_[n] << ' ' << nl_.net_name(static_cast<int>(n))
        << " $end\n";
  }
  os_ << "$upscope $end\n";
  os_ << "$enddefinitions $end\n";
  os_ << "$dumpvars\n";
  for (std::size_t n = 0; n < ids_.size(); ++n)
    emit(static_cast<int>(n), values[n]);
  os_ << "$end\n";
}

void VcdWriter::change(TimeFs t, netlist::NetId net, Logic v) {
  LIMS_CHECK_MSG(!time_open_ || t >= emitted_time_,
                 "VCD time moved backwards");
  if (!time_open_ || t != emitted_time_) {
    os_ << '#' << t << '\n';
    emitted_time_ = t;
    time_open_ = true;
  }
  emit(net, v);
}

void VcdWriter::finish(TimeFs t) {
  if (!time_open_ || t > emitted_time_) {
    os_ << '#' << t << '\n';
    emitted_time_ = t;
    time_open_ = true;
  }
  os_.flush();
}

void VcdWriter::emit(netlist::NetId net, Logic v) {
  os_ << logic_char(v) << ids_[static_cast<std::size_t>(net)] << '\n';
}

}  // namespace limsynth::evsim
