#include "evsim/stimulus.hpp"

#include <fstream>
#include <istream>
#include <vector>

#include "util/error.hpp"

namespace limsynth::evsim {

namespace {

[[noreturn]] void fail_at(std::size_t line_no, const std::string& what) {
  LIMS_FAIL(ErrorCode::kInvalidConfig,
            "stimulus line " << line_no << ": " << what);
}

/// Splits on runs of spaces/tabs; a '#' ends the payload.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string cur;
  for (const char c : line) {
    if (c == '#') break;
    if (c == ' ' || c == '\t' || c == '\r') {
      if (!cur.empty()) tokens.push_back(std::move(cur));
      cur.clear();
      continue;
    }
    cur += c;
  }
  if (!cur.empty()) tokens.push_back(std::move(cur));
  return tokens;
}

/// Strict unsigned parse (decimal, or hex with 0x prefix). No strtoull:
/// it accepts leading '-', skips whitespace, and saturates silently.
bool parse_u64(const std::string& s, std::uint64_t* out) {
  std::size_t i = 0;
  int base = 10;
  if (s.size() >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    base = 16;
    i = 2;
  }
  if (i >= s.size()) return false;
  std::uint64_t v = 0;
  for (; i < s.size(); ++i) {
    const char c = s[i];
    int digit;
    if (c >= '0' && c <= '9')
      digit = c - '0';
    else if (base == 16 && c >= 'a' && c <= 'f')
      digit = c - 'a' + 10;
    else if (base == 16 && c >= 'A' && c <= 'F')
      digit = c - 'A' + 10;
    else
      return false;
    if (digit >= base) return false;
    const std::uint64_t next = v * static_cast<std::uint64_t>(base) +
                               static_cast<std::uint64_t>(digit);
    if (next / static_cast<std::uint64_t>(base) != v) return false;  // overflow
    v = next;
  }
  *out = v;
  return true;
}

/// Reads one line with an explicit length cap. Returns false on EOF.
/// A line exceeding the cap is a hard parse error, not a truncation —
/// silently dropping bytes could turn `set a 10` into `set a 1`.
bool bounded_getline(std::istream& in, std::size_t cap, std::size_t line_no,
                     std::string* out) {
  out->clear();
  char c;
  bool any = false;
  while (in.get(c)) {
    any = true;
    if (c == '\n') return true;
    if (out->size() >= cap)
      fail_at(line_no, "line exceeds " + std::to_string(cap) + " bytes");
    *out += c;
  }
  return any;
}

}  // namespace

StimulusTrace parse_stimulus(std::istream& in, const netlist::Netlist& nl,
                             const StimulusParseOptions& options) {
  StimulusTrace trace;
  bool cycle_open = false;
  std::uint64_t cur_cycle = 0;
  std::string line;
  for (std::size_t line_no = 1;
       bounded_getline(in, options.max_line_bytes, line_no, &line);
       ++line_no) {
    const std::vector<std::string> tok = tokenize(line);
    if (tok.empty()) continue;

    if (tok[0] == "cycle") {
      if (tok.size() != 2)
        fail_at(line_no, "expected `cycle <n>`, got " +
                             std::to_string(tok.size() - 1) + " operand(s)");
      std::uint64_t n = 0;
      if (!parse_u64(tok[1], &n))
        fail_at(line_no, "bad cycle number `" + tok[1] + "`");
      if (n > options.max_cycle)
        fail_at(line_no, "cycle " + tok[1] + " exceeds the limit of " +
                             std::to_string(options.max_cycle));
      if (cycle_open && n <= cur_cycle)
        fail_at(line_no, "cycle numbers must strictly increase (" +
                             std::to_string(n) + " after " +
                             std::to_string(cur_cycle) + ")");
      cur_cycle = n;
      cycle_open = true;
      continue;
    }

    if (tok[0] == "set") {
      if (tok.size() != 3) fail_at(line_no, "expected `set <net> <0|1>`");
      if (!cycle_open) fail_at(line_no, "`set` before the first `cycle`");
      const netlist::NetId net = nl.find_net(tok[1]);
      if (net == netlist::kNoNet)
        fail_at(line_no, "unknown net `" + tok[1] + "`");
      if (tok[2] != "0" && tok[2] != "1")
        fail_at(line_no, "scalar value must be 0 or 1, got `" + tok[2] + "`");
      trace.set(static_cast<std::size_t>(cur_cycle), net, tok[2] == "1");
      continue;
    }

    if (tok[0] == "bus") {
      if (tok.size() != 3) fail_at(line_no, "expected `bus <base> <value>`");
      if (!cycle_open) fail_at(line_no, "`bus` before the first `cycle`");
      std::vector<netlist::NetId> bus;
      for (std::size_t i = 0; i <= options.max_bus_bits; ++i) {
        const netlist::NetId bit =
            nl.find_net(tok[1] + "[" + std::to_string(i) + "]");
        if (bit == netlist::kNoNet) break;
        if (i == options.max_bus_bits)
          fail_at(line_no, "bus `" + tok[1] + "` is wider than " +
                               std::to_string(options.max_bus_bits) + " bits");
        bus.push_back(bit);
      }
      if (bus.empty())
        fail_at(line_no, "unknown bus `" + tok[1] + "` (no net `" + tok[1] +
                             "[0]`)");
      std::uint64_t value = 0;
      if (!parse_u64(tok[2], &value))
        fail_at(line_no, "bad bus value `" + tok[2] + "`");
      if (bus.size() < 64 && (value >> bus.size()) != 0)
        fail_at(line_no, "value `" + tok[2] + "` does not fit the " +
                             std::to_string(bus.size()) + "-bit bus `" +
                             tok[1] + "`");
      trace.set_bus(static_cast<std::size_t>(cur_cycle), bus, value);
      continue;
    }

    fail_at(line_no, "unknown directive `" + tok[0] + "`");
  }
  return trace;
}

StimulusTrace load_stimulus(const std::string& path,
                            const netlist::Netlist& nl,
                            const StimulusParseOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    LIMS_FAIL(ErrorCode::kIo, "cannot read stimulus file: " << path);
  DIAG_CONTEXT("parse stimulus " + path);
  return parse_stimulus(in, nl, options);
}

}  // namespace limsynth::evsim
