#include "evsim/evsim.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace limsynth::evsim {

namespace {

using netlist::InstId;
using netlist::NetId;

/// Presents the event engine to unmodified netlist::MacroModels through
/// the Simulator macro-port surface. The base class is constructed but
/// never stepped; only the three virtual port methods are live.
class MacroPortAdapter final : public netlist::Simulator {
 public:
  MacroPortAdapter(EventSimulator& ev, const netlist::Netlist& nl,
                   const tech::StdCellLib& cells)
      : netlist::Simulator(nl, cells), ev_(ev) {}

  bool pin_value(InstId inst, const std::string& pin) const override {
    return to_bool(ev_.pin_logic(inst, pin));
  }
  void drive_pin(InstId inst, const std::string& pin, bool v) override {
    ev_.macro_drive(inst, pin, v);
  }
  void note_macro_access(InstId inst) override {
    ev_.note_macro_access(inst);
  }

 private:
  EventSimulator& ev_;
};

}  // namespace

EventSimulator::EventSimulator(const netlist::Netlist& nl,
                               const tech::StdCellLib& cells,
                               TimingAnnotation annotation,
                               const EvsimOptions& options)
    : nl_(nl), ann_(std::move(annotation)), opt_(options) {
  LIMS_CHECK_MSG(opt_.period >= 0.0, "negative clock period");
  timed_ = opt_.period > 0.0;
  // Quiesce mode still needs a nominal edge spacing for the waveform.
  period_fs_ = timed_ ? to_fs(opt_.period) : TimeFs{1'000'000};
  LIMS_CHECK_MSG(period_fs_ > 0, "clock period rounds to zero fs");

  const std::size_t n_nets = nl.nets().size();
  const Logic init = opt_.x_init ? Logic::kX : Logic::k0;
  values_.assign(n_nets, init);
  transport_last_.assign(n_nets, init);
  pending_.assign(n_nets, EventWheel::kNoHandle);
  toggle_counts_.assign(n_nets, 0);
  glitch_counts_.assign(n_nets, 0);
  cycle_transitions_.assign(n_nets, 0);
  cycle_start_value_.assign(n_nets, init);
  last_change_.assign(n_nets, 0);

  fanout_.resize(n_nets);
  for (std::size_t g = 0; g < ann_.gates.size(); ++g) {
    const GateInfo& gi = ann_.gates[g];
    for (int k = 0; k < gi.nin; ++k)
      fanout_[static_cast<std::size_t>(gi.in[k])].push_back(
          {static_cast<std::uint32_t>(g), static_cast<std::uint8_t>(k)});
  }

  flop_state_.assign(ann_.flops.size(), init);
  for (std::size_t f = 0; f < ann_.flops.size(); ++f)
    flop_index_[ann_.flops[f].inst] = f;

  macro_pin_index_.resize(ann_.macros.size());
  for (std::size_t m = 0; m < ann_.macros.size(); ++m) {
    macro_index_[ann_.macros[m].inst] = m;
    for (std::size_t o = 0; o < ann_.macros[m].outputs.size(); ++o)
      macro_pin_index_[m][ann_.macros[m].outputs[o].pin] = o;
  }

  endpoints_on_net_.resize(n_nets);
  for (std::size_t e = 0; e < ann_.endpoints.size(); ++e)
    endpoints_on_net_[static_cast<std::size_t>(ann_.endpoints[e].net)]
        .push_back(e);
  endpoint_violations_.assign(ann_.endpoints.size(), 0);

  event_budget_ = opt_.max_events_per_cycle > 0
                      ? opt_.max_events_per_cycle
                      : 1000 * (ann_.gates.size() + ann_.flops.size() + 64);

  adapter_ = std::make_unique<MacroPortAdapter>(*this, nl, cells);
  next_edge_ = period_fs_;
  prime();
}

EventSimulator::~EventSimulator() = default;

void EventSimulator::prime() {
  // Power-up evaluation: every gate whose function of the initial values
  // disagrees with its (initial) output schedules a change — the event
  // analogue of the settle engine's first settle() pass. With X init most
  // gates stay X; tie cells and gates with controlling constants resolve.
  for (std::size_t g = 0; g < ann_.gates.size(); ++g) {
    const GateInfo& gi = ann_.gates[g];
    Logic in[4];
    for (int k = 0; k < gi.nin; ++k)
      in[k] = values_[static_cast<std::size_t>(gi.in[k])];
    const Logic v = eval_func(gi.func, in, gi.nin);
    TimeFs delay = 0;
    for (int k = 0; k < gi.nin; ++k) delay = std::max(delay, gi.delay_fs[k]);
    schedule_output(gi.out, v, delay);
  }
}

void EventSimulator::attach(InstId inst,
                            std::shared_ptr<netlist::MacroModel> model) {
  LIMS_CHECK_MSG(macro_index_.count(inst) != 0,
                 "attach on non-macro instance " << nl_.instance(inst).name);
  macros_.attach(inst, std::move(model));
}

netlist::MacroModel* EventSimulator::model(InstId inst) const {
  return macros_.model(inst);
}

std::vector<InstId> EventSimulator::flop_instances() const {
  std::vector<InstId> out;
  out.reserve(ann_.flops.size());
  for (const FlopInfo& fi : ann_.flops) out.push_back(fi.inst);
  return out;
}

void EventSimulator::flip_flop(InstId inst) {
  const auto it = flop_index_.find(inst);
  LIMS_CHECK_MSG(it != flop_index_.end(),
                 "not a flop: " << nl_.instance(inst).name);
  const std::size_t f = it->second;
  const Logic flipped = flop_state_[f] == Logic::k1 ? Logic::k0 : Logic::k1;
  flop_state_[f] = flipped;
  // The corrupted value leaves the cell through the normal CK->Q arc, as
  // if the storage node flipped right now.
  schedule_output(ann_.flops[f].q, flipped, t_now_ + ann_.flops[f].clk_to_q_fs);
}

void EventSimulator::arm_set_pulse(NetId net, TimeFs width_fs,
                                   TimeFs lead_fs) {
  LIMS_CHECK_MSG(static_cast<std::size_t>(net) < values_.size(),
                 "SET pulse on unknown net " << net);
  LIMS_CHECK_MSG(net != nl_.clock(), "SET pulse on the clock net");
  LIMS_CHECK_MSG(width_fs > 0, "SET pulse needs a positive width");
  LIMS_CHECK_MSG(!set_armed_, "a SET pulse is already armed");
  set_armed_ = true;
  set_net_ = net;
  set_width_fs_ = width_fs;
  set_lead_fs_ = lead_fs;
}

void EventSimulator::fire_set(TimeFs t_pulse) {
  set_armed_ = false;
  const auto n = static_cast<std::size_t>(set_net_);
  const Logic v = values_[n];
  const Logic hit = v == Logic::k1 ? Logic::k0 : Logic::k1;  // X upsets to 1
  t_now_ = std::max(t_now_, t_pulse);
  // The particle strike overrides the driver instantly...
  apply_change(set_net_, hit, t_now_);
  // ...and the driving gate restores the functional value once the
  // deposited charge dissipates (the pulse's trailing edge).
  schedule_output(set_net_, v, t_now_ + set_width_fs_);
}

void EventSimulator::set_input(NetId net, bool value) {
  apply_change(net, from_bool(value), t_now_);
}

void EventSimulator::set_bus(const std::vector<NetId>& bus,
                             std::uint64_t value) {
  LIMS_CHECK(bus.size() <= 64);
  for (std::size_t i = 0; i < bus.size(); ++i)
    set_input(bus[i], (value >> i) & 1);
}

std::uint64_t EventSimulator::bus_value(const std::vector<NetId>& bus) const {
  LIMS_CHECK(bus.size() <= 64);
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bus.size(); ++i)
    if (to_bool(value(bus[i]))) v |= (std::uint64_t{1} << i);
  return v;
}

bool EventSimulator::bus_has_x(const std::vector<NetId>& bus) const {
  for (NetId n : bus)
    if (is_x(value(n))) return true;
  return false;
}

Logic EventSimulator::flop_state(InstId inst) const {
  const auto it = flop_index_.find(inst);
  LIMS_CHECK_MSG(it != flop_index_.end(),
                 "not a flop: " << nl_.instance(inst).name);
  return flop_state_[it->second];
}

void EventSimulator::touch_net(NetId net) {
  const auto n = static_cast<std::size_t>(net);
  if (cycle_transitions_[n] == 0) touched_.push_back(net);
  ++cycle_transitions_[n];
}

void EventSimulator::apply_change(NetId net, Logic v, TimeFs t) {
  const auto n = static_cast<std::size_t>(net);
  LIMS_CHECK(n < values_.size());
  if (values_[n] == v) return;
  values_[n] = v;
  last_change_[n] = t;
  if (net != nl_.clock()) {
    ++toggle_counts_[n];
    touch_net(net);
  }
  if (vcd_) vcd_->change(t, net, v);
  for (const Fanin& f : fanout_[n]) eval_and_schedule(f.gate, f.input, t);
}

void EventSimulator::eval_and_schedule(std::uint32_t gate, std::uint8_t input,
                                       TimeFs t_cause) {
  const GateInfo& gi = ann_.gates[gate];
  Logic in[4];
  for (int k = 0; k < gi.nin; ++k)
    in[k] = values_[static_cast<std::size_t>(gi.in[k])];
  const Logic v = eval_func(gi.func, in, gi.nin);
  // Delay through the arc of the input that just changed (wire delay of
  // the input net folded in at annotation time).
  schedule_output(gi.out, v, t_cause + gi.delay_fs[input]);
}

void EventSimulator::schedule_output(NetId net, Logic v, TimeFs te) {
  const auto n = static_cast<std::size_t>(net);
  if (opt_.inertial) {
    const EventWheel::Handle p = pending_[n];
    if (p != EventWheel::kNoHandle) {
      const Logic pv = wheel_.scheduled_value(p);
      if (v == pv) {
        // Re-affirmed target: the transition happens at the earliest
        // sufficient cause.
        if (te < wheel_.scheduled_time(p)) {
          wheel_.cancel(p);
          pending_[n] = wheel_.schedule(te, net, v);
        }
        return;
      }
      // Preempted before it could land: an inertially filtered pulse.
      wheel_.cancel(p);
      pending_[n] = EventWheel::kNoHandle;
      if (net != nl_.clock()) ++glitch_.filtered;
      if (v == values_[n]) return;  // swallowed entirely
      pending_[n] = wheel_.schedule(te, net, v);
      return;
    }
    if (v == values_[n]) return;
    pending_[n] = wheel_.schedule(te, net, v);
  } else {
    // Transport delay: every determined transition lands; compare against
    // the last scheduled target so pulse trains survive.
    if (v == transport_last_[n]) return;
    transport_last_[n] = v;
    wheel_.schedule(te, net, v);
  }
}

void EventSimulator::drain(TimeFs horizon, bool bounded) {
  while (!wheel_.empty() && (!bounded || wheel_.next_time() < horizon)) {
    const EventWheel::Popped ev = wheel_.pop();
    const auto n = static_cast<std::size_t>(ev.net);
    pending_[n] = EventWheel::kNoHandle;
    t_now_ = ev.time;
    ++events_processed_;
    if (++cycle_events_ > event_budget_) {
      std::ostringstream os;
      os << "evsim event budget (" << event_budget_ << ") exceeded in cycle "
         << cycles_ << "; last event on net " << nl_.net_name(ev.net)
         << " (oscillating loop through a macro model?)";
      throw Error(ErrorCode::kResourceExhausted, os.str());
    }
    apply_change(ev.net, ev.value, ev.time);
  }
}

void EventSimulator::check_setup(TimeFs t_edge) {
  const TimeFs guard = to_fs(opt_.setup_guard);
  for (std::size_t e = 0; e < ann_.endpoints.size(); ++e) {
    const EndpointInfo& ep = ann_.endpoints[e];
    const auto n = static_cast<std::size_t>(ep.net);
    // Late data: still in flight at the capture edge, or settled inside
    // the setup window. The guard absorbs annotation rounding so a design
    // run exactly at STA's min_period reports clean.
    const bool in_flight =
        opt_.inertial && pending_[n] != EventWheel::kNoHandle;
    const bool in_window = last_change_[n] + ep.window_fs > t_edge + guard;
    if (in_flight || in_window) {
      ++endpoint_violations_[e];
      ++total_violations_;
    }
  }
}

void EventSimulator::edge(TimeFs t_edge) {
  edge_time_ = t_edge;
  // Sample every flop's D (pre-edge values) before any commit, exactly
  // like the settle engine's two-phase clock_edge.
  std::vector<Logic> next(flop_state_);
  for (std::size_t f = 0; f < ann_.flops.size(); ++f) {
    const FlopInfo& fi = ann_.flops[f];
    const Logic d = values_[static_cast<std::size_t>(fi.d)];
    if (fi.en == netlist::kNoNet) {
      next[f] = d;
    } else {
      const Logic en = values_[static_cast<std::size_t>(fi.en)];
      if (en == Logic::k1)
        next[f] = d;
      else if (en == Logic::kX && d != flop_state_[f])
        next[f] = Logic::kX;
    }
  }
  // Macro models fire on pre-edge pin values; their drives land at the
  // annotated CK->pin delay.
  for (const auto& [inst, model] : macros_.models())
    model->on_clock(*adapter_, inst);
  // Commit: Q transitions launch at the annotated CK->Q delay.
  for (std::size_t f = 0; f < ann_.flops.size(); ++f) {
    const FlopInfo& fi = ann_.flops[f];
    if (flop_state_[f] == next[f]) continue;
    flop_state_[f] = next[f];
    schedule_output(fi.q, next[f], t_edge + fi.clk_to_q_fs);
  }
  // Clock pulse: rise now, fall scheduled mid-period through the wheel.
  // The clock net is excluded from toggle/glitch statistics (its energy
  // is priced by the clock-tree power model, not by activity).
  if (nl_.clock() != netlist::kNoNet) {
    apply_change(nl_.clock(), Logic::k1, t_edge);
    schedule_output(nl_.clock(), Logic::k0, t_edge + period_fs_ / 2);
  }
}

void EventSimulator::finalize_cycle_glitches() {
  for (NetId net : touched_) {
    const auto n = static_cast<std::size_t>(net);
    const std::uint32_t k = cycle_transitions_[n];
    const std::uint32_t functional =
        cycle_start_value_[n] != values_[n] ? 1 : 0;
    const std::uint32_t extra = k - functional;
    glitch_counts_[n] += extra;
    glitch_.propagated += extra;
    cycle_transitions_[n] = 0;
    cycle_start_value_[n] = values_[n];
  }
  touched_.clear();
}

void EventSimulator::cycle() {
  cycle_events_ = 0;
  if (timed_) {
    const TimeFs t_edge = next_edge_;
    if (set_armed_) {
      const TimeFs t_pulse =
          t_edge > set_lead_fs_ ? t_edge - set_lead_fs_ : TimeFs{0};
      drain(std::max(t_now_, t_pulse), /*bounded=*/true);
      fire_set(t_pulse);
    }
    drain(t_edge, /*bounded=*/true);
    check_setup(t_edge);
    edge(t_edge);
    t_now_ = t_edge;
  } else {
    // Quiesce: settle-equivalent end-of-cycle state. Drain everything,
    // clock the state, drain the consequences.
    drain(0, /*bounded=*/false);
    TimeFs t_edge = std::max(next_edge_, t_now_ + 1);
    if (set_armed_) {
      // A quiesce cycle has no real clock, so pin the strike exactly
      // `lead` before the edge (pushing the edge out if the cycle has
      // already settled closer than that). Capture then follows the same
      // physics as timed mode: a corrupted front whose path delay p
      // satisfies lead - width < p <= lead is still live at the edge;
      // everything else reconverges or arrives too late.
      t_edge = std::max(t_edge, t_now_ + set_lead_fs_);
      fire_set(t_edge - set_lead_fs_);
      drain(t_edge, /*bounded=*/true);
    }
    edge(t_edge);
    t_now_ = t_edge;
    drain(0, /*bounded=*/false);
  }
  finalize_cycle_glitches();
  ++cycles_;
  next_edge_ = std::max(t_now_ + 1, (timed_ ? next_edge_ : t_now_) + period_fs_);
}

void EventSimulator::run(std::uint64_t cycles) {
  for (std::uint64_t i = 0; i < cycles; ++i) cycle();
}

std::vector<SetupViolation> EventSimulator::violations_by_endpoint() const {
  std::vector<SetupViolation> out;
  for (std::size_t e = 0; e < ann_.endpoints.size(); ++e) {
    if (endpoint_violations_[e] == 0) continue;
    out.push_back({ann_.endpoints[e].name, endpoint_violations_[e]});
  }
  std::sort(out.begin(), out.end(),
            [](const SetupViolation& a, const SetupViolation& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.endpoint < b.endpoint;
            });
  return out;
}

bool EventSimulator::endpoint_violated(const std::string& name) const {
  for (std::size_t e = 0; e < ann_.endpoints.size(); ++e)
    if (ann_.endpoints[e].name == name) return endpoint_violations_[e] > 0;
  return false;
}

netlist::Activity EventSimulator::activity() const {
  netlist::Activity act;
  act.cycles = cycles_;
  act.toggles = toggle_counts_;
  act.glitch_toggles = glitch_counts_;
  act.macro_accesses = macros_.access_counts();
  return act;
}

void EventSimulator::stream_vcd(std::ostream& os) {
  LIMS_CHECK_MSG(cycles_ == 0 && !vcd_,
                 "stream_vcd must be called once, before the first cycle");
  vcd_ = std::make_unique<VcdWriter>(os, nl_);
  vcd_->write_header(values_);
}

void EventSimulator::finish_vcd() {
  if (vcd_) vcd_->finish(t_now_);
}

Logic EventSimulator::pin_logic(InstId inst, const std::string& pin) const {
  // Cached per-instance pin resolution (one hash lookup per model call,
  // no linear pin scan).
  const NetId net = macros_.pin_net(nl_, inst, pin);
  LIMS_CHECK_MSG(net != netlist::kNoNet,
                 "instance " << nl_.instance(inst).name << " has no pin "
                             << pin);
  return value(net);
}

void EventSimulator::macro_drive(InstId inst, const std::string& pin,
                                 bool v) {
  const auto it = macro_index_.find(inst);
  LIMS_CHECK_MSG(it != macro_index_.end(),
                 "drive_pin on non-macro " << nl_.instance(inst).name);
  const auto& pins = macro_pin_index_[it->second];
  const auto pit = pins.find(pin);
  LIMS_CHECK_MSG(pit != pins.end(), "macro " << nl_.instance(inst).name
                                             << " has no output pin " << pin);
  const MacroOutInfo& out = ann_.macros[it->second].outputs[pit->second];
  schedule_output(out.net, from_bool(v), edge_time_ + out.delay_fs);
}

void EventSimulator::note_macro_access(InstId inst) {
  macros_.note_access(inst);
}

}  // namespace limsynth::evsim
