// Streaming VCD (value change dump) writer.
//
// Deliberately deterministic: no $date section, ids assigned in net-id
// order, timestamps emitted only when time advances. Two runs of the same
// stimulus produce byte-identical files, which is what lets CI diff
// waveforms instead of eyeballing them.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "evsim/logic.hpp"
#include "evsim/wheel.hpp"
#include "netlist/netlist.hpp"

namespace limsynth::evsim {

class VcdWriter {
 public:
  /// Binds the writer to a stream; `os` must outlive the writer.
  VcdWriter(std::ostream& os, const netlist::Netlist& nl);

  /// Emits $timescale/$scope/$var/$enddefinitions and a $dumpvars block
  /// with the given initial net values. Call exactly once, first.
  void write_header(const std::vector<Logic>& values);

  /// Records one value change at absolute time `t` (fs, monotone).
  void change(TimeFs t, netlist::NetId net, Logic v);

  /// Emits a final timestamp so the last changes have visible duration.
  void finish(TimeFs t);

 private:
  void emit(netlist::NetId net, Logic v);

  std::ostream& os_;
  const netlist::Netlist& nl_;
  std::vector<std::string> ids_;
  TimeFs emitted_time_ = 0;
  bool time_open_ = false;  // a #<t> line has been written yet
};

}  // namespace limsynth::evsim
