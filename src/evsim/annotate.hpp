// Delay back-annotation for the event-driven engine — the internal SDF
// substitute.
//
// Every arc delay the engine will ever use is computed once, up front,
// from the same data STA reads: NLDM delay LUTs looked up at the
// STA-propagated input slew (or a default slew pre-STA) and the shared
// per-net loads from sta::compute_net_loads, plus the lumped-RC wire
// delay of the driven net. Sequential and macro cells contribute their
// clock-to-output arcs and setup windows, so the simulator can check the
// dynamic run against the static min_period claim.
#pragma once

#include <string>
#include <vector>

#include "evsim/wheel.hpp"
#include "liberty/library.hpp"
#include "netlist/bound.hpp"
#include "netlist/netlist.hpp"
#include "sta/sta.hpp"
#include "tech/stdcell.hpp"

namespace limsynth::evsim {

struct AnnotateOptions {
  /// Placement parasitics; nullptr = pre-placement fanout wire model.
  const place::Floorplan* floorplan = nullptr;
  double prelayout_cap_per_sink = 1.0e-15;  // F
  double output_load = 5e-15;               // F on primary outputs
  /// STA result over the same netlist: arc lookups then use the
  /// propagated per-net slews (the delays evsim replays are exactly the
  /// ones STA summed). Without it, `default_slew` is used everywhere.
  const sta::StaResult* sta = nullptr;
  double default_slew = 30e-12;  // s
  /// Folded into every endpoint's setup window, as in StaOptions.
  double clock_uncertainty = 15e-12;  // s
};

/// One combinational instance, inputs in pin order (A, B, C, D).
struct GateInfo {
  netlist::InstId inst = -1;
  tech::CellFunc func = tech::CellFunc::kInv;
  int nin = 0;
  netlist::NetId in[4] = {netlist::kNoNet, netlist::kNoNet, netlist::kNoNet,
                          netlist::kNoNet};
  netlist::NetId out = netlist::kNoNet;
  /// Input-to-output delay per input position, including the output net's
  /// wire delay. fs.
  TimeFs delay_fs[4] = {0, 0, 0, 0};
};

struct FlopInfo {
  netlist::InstId inst = -1;
  netlist::NetId d = netlist::kNoNet;
  netlist::NetId en = netlist::kNoNet;  // kNoNet for plain DFF
  netlist::NetId q = netlist::kNoNet;
  TimeFs clk_to_q_fs = 0;  // including Q-net wire delay
};

struct MacroOutInfo {
  std::string pin;  // full pin name, e.g. "DO[3]"
  netlist::NetId net = netlist::kNoNet;
  TimeFs delay_fs = 0;  // clock-to-pin arc + wire delay
};

struct MacroInfo {
  netlist::InstId inst = -1;
  std::vector<MacroOutInfo> outputs;
};

/// A setup-constrained capture point (flop D/EN, macro input, or primary
/// output). `name` matches sta::StaResult::critical_endpoint formatting.
struct EndpointInfo {
  std::string name;
  netlist::NetId net = netlist::kNoNet;
  /// Setup + clock uncertainty, fs: data must be stable this long before
  /// the capture edge.
  TimeFs window_fs = 0;
};

struct TimingAnnotation {
  std::vector<GateInfo> gates;
  std::vector<FlopInfo> flops;
  std::vector<MacroInfo> macros;
  std::vector<EndpointInfo> endpoints;
};

inline TimeFs to_fs(double seconds) {
  return seconds <= 0.0 ? 0 : static_cast<TimeFs>(seconds * 1e15 + 0.5);
}

/// Builds the annotation from a bound design (arc/pin resolution is
/// slot-indexed, no per-instance string scans). Throws Error(kStaleBinding)
/// on an out-of-date binding or when a cell lacks its expected timing arcs.
TimingAnnotation annotate_delays(const netlist::BoundDesign& bound,
                                 const tech::StdCellLib& cells,
                                 const AnnotateOptions& options = {});

/// Convenience: binds and annotates. Throws when the netlist references
/// cells missing from `lib` or when a cell lacks its expected timing arcs.
TimingAnnotation annotate_delays(const netlist::Netlist& nl,
                                 const liberty::Library& lib,
                                 const tech::StdCellLib& cells,
                                 const AnnotateOptions& options = {});

}  // namespace limsynth::evsim
