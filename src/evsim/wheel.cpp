#include "evsim/wheel.hpp"

#include <algorithm>

namespace limsynth::evsim {

EventWheel::EventWheel(TimeFs bucket_width_fs, std::size_t buckets)
    : buckets_(buckets), width_(bucket_width_fs) {
  LIMS_CHECK(bucket_width_fs > 0 && buckets > 0);
}

EventWheel::Handle EventWheel::schedule(TimeFs time, netlist::NetId net,
                                        Logic value) {
  LIMS_CHECK_MSG(time >= last_popped_,
                 "event scheduled in the past: " << time << " < "
                                                 << last_popped_);
  Handle h;
  if (free_head_ != kNoHandle) {
    h = free_head_;
    free_head_ = pool_[h].next_free;
  } else {
    h = static_cast<Handle>(pool_.size());
    pool_.emplace_back();
  }
  Event& ev = pool_[h];
  ev.time = time;
  ev.seq = next_seq_++;
  ev.net = net;
  ev.value = value;
  ev.cancelled = false;
  ev.next_free = kNoHandle;

  std::vector<Handle>& bucket =
      buckets_[(time / width_) % buckets_.size()];
  const auto pos = std::upper_bound(
      bucket.begin(), bucket.end(), h,
      [this](Handle a, Handle b) { return before(a, b); });
  bucket.insert(pos, h);
  ++live_;
  return h;
}

void EventWheel::cancel(Handle h) {
  LIMS_CHECK(h < pool_.size() && !pool_[h].cancelled);
  pool_[h].cancelled = true;
  --live_;
  // The entry stays in its bucket; locate() reclaims it lazily.
}

void EventWheel::release(Handle h) {
  pool_[h].next_free = free_head_;
  free_head_ = h;
}

EventWheel::Handle EventWheel::locate() {
  // Calendar-queue walk: starting at the bucket of the last popped time,
  // visit buckets in lap order. Buckets partition time by (t / width)
  // ring position, and each is sorted, so the first head that falls
  // inside the current lap window is the global minimum.
  const std::size_t nb = buckets_.size();
  std::size_t lap = last_popped_ / width_;
  for (std::size_t walked = 0; walked < nb; ++walked, ++lap) {
    std::vector<Handle>& bucket = buckets_[lap % nb];
    while (!bucket.empty() && pool_[bucket.front()].cancelled) {
      release(bucket.front());
      bucket.erase(bucket.begin());
    }
    if (bucket.empty()) continue;
    if (pool_[bucket.front()].time < (lap + 1) * width_)
      return bucket.front();
  }
  // The earliest event is more than a full ring ahead: fall back to a
  // head scan (rare — only across long quiet gaps).
  Handle best = kNoHandle;
  for (auto& bucket : buckets_) {
    while (!bucket.empty() && pool_[bucket.front()].cancelled) {
      release(bucket.front());
      bucket.erase(bucket.begin());
    }
    if (bucket.empty()) continue;
    if (best == kNoHandle || before(bucket.front(), best))
      best = bucket.front();
  }
  LIMS_CHECK_MSG(best != kNoHandle, "event wheel locate on empty wheel");
  return best;
}

TimeFs EventWheel::next_time() {
  LIMS_CHECK(!empty());
  return pool_[locate()].time;
}

EventWheel::Popped EventWheel::pop() {
  LIMS_CHECK(!empty());
  const Handle h = locate();
  Event& ev = pool_[h];
  std::vector<Handle>& bucket =
      buckets_[(ev.time / width_) % buckets_.size()];
  LIMS_CHECK(!bucket.empty() && bucket.front() == h);
  bucket.erase(bucket.begin());
  --live_;
  last_popped_ = ev.time;
  Popped out{ev.time, ev.net, ev.value};
  release(h);
  return out;
}

}  // namespace limsynth::evsim
