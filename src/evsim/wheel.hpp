// Calendar-queue event wheel (femtosecond-resolution integer time).
//
// The classic discrete-event structure: a ring of time buckets, each
// holding its pending events sorted by (time, sequence). Scheduling and
// popping are O(1) amortized when event times cluster near the cursor —
// exactly the profile of gate delays around a simulation's "now". Integer
// femtoseconds keep runs bit-deterministic (no float comparison races),
// and the explicit sequence number makes same-instant events pop in
// schedule order, which is what makes VCD output reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "evsim/logic.hpp"
#include "netlist/netlist.hpp"

namespace limsynth::evsim {

using TimeFs = std::uint64_t;

class EventWheel {
 public:
  using Handle = std::uint32_t;
  static constexpr Handle kNoHandle = 0xFFFFFFFFu;

  /// `bucket_width_fs` trades ring coverage against per-bucket scan cost;
  /// the 1 ps default suits gate delays of a few ps under ns periods.
  explicit EventWheel(TimeFs bucket_width_fs = 1000,
                      std::size_t buckets = 4096);

  /// Schedules a net-change event; `time` must be >= the last popped time.
  Handle schedule(TimeFs time, netlist::NetId net, Logic value);

  /// Cancels a pending event (inertial-delay preemption). Safe only for
  /// handles that have not been popped yet.
  void cancel(Handle h);

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  /// Time of the earliest pending event; wheel must not be empty.
  TimeFs next_time();

  struct Popped {
    TimeFs time = 0;
    netlist::NetId net = netlist::kNoNet;
    Logic value = Logic::kX;
  };
  /// Removes and returns the earliest pending event ((time, seq) order).
  Popped pop();

  /// Value carried by a pending (not yet popped) event.
  Logic scheduled_value(Handle h) const { return pool_[h].value; }
  TimeFs scheduled_time(Handle h) const { return pool_[h].time; }

 private:
  struct Event {
    TimeFs time = 0;
    std::uint64_t seq = 0;
    netlist::NetId net = netlist::kNoNet;
    Logic value = Logic::kX;
    bool cancelled = false;
    Handle next_free = kNoHandle;
  };

  /// Finds the earliest live event (calendar walk from the last popped
  /// time), purging cancelled entries it passes. Requires live_ > 0.
  Handle locate();
  void release(Handle h);
  bool before(Handle a, Handle b) const {
    return pool_[a].time < pool_[b].time ||
           (pool_[a].time == pool_[b].time && pool_[a].seq < pool_[b].seq);
  }

  std::vector<Event> pool_;
  Handle free_head_ = kNoHandle;
  std::vector<std::vector<Handle>> buckets_;  // each sorted by (time, seq)
  TimeFs width_;
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 0;
  TimeFs last_popped_ = 0;
};

}  // namespace limsynth::evsim
