#include "evsim/crosscheck.hpp"

#include <sstream>

#include "util/error.hpp"

namespace limsynth::evsim {

namespace {

using netlist::NetId;

void grow_to(StimulusTrace& trace, std::size_t cycle) {
  if (trace.cycles.size() <= cycle) trace.cycles.resize(cycle + 1);
}

}  // namespace

void StimulusTrace::set(std::size_t cycle, NetId net, bool value) {
  grow_to(*this, cycle);
  cycles[cycle].push_back({net, value});
}

void StimulusTrace::set_bus(std::size_t cycle,
                            const std::vector<NetId>& bus,
                            std::uint64_t value) {
  LIMS_CHECK(bus.size() <= 64);
  for (std::size_t i = 0; i < bus.size(); ++i)
    set(cycle, bus[i], (value >> i) & 1);
}

CrossCheckResult cross_check(const netlist::Netlist& nl,
                             const tech::StdCellLib& cells,
                             const TimingAnnotation& annotation,
                             const StimulusTrace& stimulus,
                             const AttachSettle& attach_settle,
                             const AttachEvent& attach_event) {
  netlist::Simulator golden(nl, cells);
  if (attach_settle) attach_settle(golden);
  golden.settle();

  EvsimOptions opt;
  opt.period = 0.0;     // quiesce mode: settle-equivalent cycle states
  opt.x_init = false;   // both engines power up at 0
  EventSimulator ev(nl, cells, annotation, opt);
  if (attach_event) attach_event(ev);

  CrossCheckResult res;
  const std::size_t n_nets = nl.nets().size();
  for (std::size_t c = 0; c < stimulus.size(); ++c) {
    for (const auto& ch : stimulus.cycles[c]) {
      golden.set_input(ch.net, ch.value);
      ev.set_input(ch.net, ch.value);
    }
    golden.settle();
    golden.clock_edge();
    ev.cycle();
    ++res.cycles;
    for (std::size_t n = 0; n < n_nets; ++n) {
      const auto net = static_cast<NetId>(n);
      if (net == nl.clock()) continue;
      const Logic lv = ev.value(net);
      const bool gv = golden.value(net);
      if (!is_x(lv) && to_bool(lv) == gv) continue;
      ++res.mismatched_nets;
      if (res.first_mismatch.empty()) {
        std::ostringstream os;
        os << "cycle " << c << ": net " << nl.net_name(net) << " evsim="
           << logic_char(lv) << " settle=" << (gv ? '1' : '0');
        res.first_mismatch = os.str();
      }
    }
  }
  return res;
}

bool StaValidation::endpoint_violated(const std::string& name) const {
  for (const auto& e : endpoints)
    if (e.endpoint == name) return true;
  return false;
}

StaValidation validate_at_period(const netlist::Netlist& nl,
                                 const tech::StdCellLib& cells,
                                 const TimingAnnotation& annotation,
                                 double period,
                                 const StimulusTrace& stimulus,
                                 const AttachSettle& attach_settle,
                                 const AttachEvent& attach_event) {
  LIMS_CHECK_MSG(period > 0.0, "validate_at_period needs a positive period");
  netlist::Simulator golden(nl, cells);
  if (attach_settle) attach_settle(golden);
  golden.settle();

  EvsimOptions opt;
  opt.period = period;  // timed mode: the edge truncates the event stream
  opt.x_init = false;
  EventSimulator ev(nl, cells, annotation, opt);
  if (attach_event) attach_event(ev);

  StaValidation res;
  res.period = period;
  for (std::size_t c = 0; c < stimulus.size(); ++c) {
    for (const auto& ch : stimulus.cycles[c]) {
      golden.set_input(ch.net, ch.value);
      ev.set_input(ch.net, ch.value);
    }
    golden.settle();
    golden.clock_edge();
    ev.cycle();
    ++res.cycles;
    // Golden captures: a flop's Q net holds the captured value right
    // after clock_edge (Q is driven by nothing else).
    for (const auto& fi : annotation.flops) {
      const Logic got = ev.flop_state(fi.inst);
      const bool want = golden.value(fi.q);
      if (is_x(got) || to_bool(got) != want) ++res.capture_mismatches;
    }
  }
  res.setup_violations = ev.setup_violations();
  res.endpoints = ev.violations_by_endpoint();
  return res;
}

}  // namespace limsynth::evsim
