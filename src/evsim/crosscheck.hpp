// Equivalence and timing-validation harnesses tying the two simulation
// engines together.
//
// cross_check() drives the settle engine and the event engine (quiesce
// mode, zero-init) with one stimulus trace and compares every net and
// every cycle — the functional proof that event-driven evaluation with
// per-arc delays reaches the same fixpoints as the golden two-phase
// simulator. validate_at_period() reruns the trace in timed mode: at
// STA's min_period every capture must match the settle engine and no
// setup check may fire; 5% past it the critical endpoint must complain.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "evsim/evsim.hpp"
#include "netlist/sim.hpp"

namespace limsynth::evsim {

/// Per-cycle primary-input changes, applied to both engines verbatim.
struct StimulusTrace {
  struct Change {
    netlist::NetId net = netlist::kNoNet;
    bool value = false;
  };
  std::vector<std::vector<Change>> cycles;

  void set(std::size_t cycle, netlist::NetId net, bool value);
  void set_bus(std::size_t cycle, const std::vector<netlist::NetId>& bus,
               std::uint64_t value);
  std::size_t size() const { return cycles.size(); }
};

using AttachSettle = std::function<void(netlist::Simulator&)>;
using AttachEvent = std::function<void(EventSimulator&)>;

struct CrossCheckResult {
  std::uint64_t cycles = 0;
  /// Net-value disagreements accumulated over all cycles (X on the event
  /// engine where the settle engine has a value counts as a mismatch).
  std::uint64_t mismatched_nets = 0;
  std::string first_mismatch;  // human-readable locus of the first one
  bool ok() const { return mismatched_nets == 0; }
};

/// Runs both engines over `stimulus` and compares all non-clock nets
/// after every cycle. The attach callbacks install fresh MacroModel
/// instances on each engine (models carry state, so each engine needs
/// its own).
CrossCheckResult cross_check(const netlist::Netlist& nl,
                             const tech::StdCellLib& cells,
                             const TimingAnnotation& annotation,
                             const StimulusTrace& stimulus,
                             const AttachSettle& attach_settle = {},
                             const AttachEvent& attach_event = {});

struct StaValidation {
  double period = 0.0;
  std::uint64_t cycles = 0;
  /// Flop captures disagreeing with the settle engine's (period-blind)
  /// golden captures — nonzero means the period is functionally too fast.
  std::uint64_t capture_mismatches = 0;
  std::uint64_t setup_violations = 0;
  std::vector<SetupViolation> endpoints;  // most-violated first
  bool endpoint_violated(const std::string& name) const;
  bool clean() const {
    return capture_mismatches == 0 && setup_violations == 0;
  }
};

/// Replays `stimulus` on the event engine clocked at `period` (timed
/// mode) in lockstep with a settle-engine golden run.
StaValidation validate_at_period(const netlist::Netlist& nl,
                                 const tech::StdCellLib& cells,
                                 const TimingAnnotation& annotation,
                                 double period, const StimulusTrace& stimulus,
                                 const AttachSettle& attach_settle = {},
                                 const AttachEvent& attach_event = {});

}  // namespace limsynth::evsim
