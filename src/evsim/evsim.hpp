// Event-driven timing simulation over netlist::Netlist.
//
// Where the settle engine answers "what value does this net reach", this
// engine answers "when, and through how many spurious transitions". Nets
// change through timestamped events drained from a calendar-queue wheel;
// every gate arc carries its back-annotated NLDM delay (see annotate.hpp),
// so unequal path depths produce real hazard pulses. Inertial filtering
// models what silicon does to pulses shorter than a gate's response:
// a pending output event preempted by a newer evaluation is a *filtered*
// glitch (it never reaches the net); extra transitions that do land on a
// net beyond its one functional change per cycle are *propagated* glitches
// and feed the glitch component of power analysis.
//
// Two clocking modes:
//  - quiesce (period = 0): every cycle drains the wheel to empty before
//    and after the edge. Timing-accurate event order, settle-equivalent
//    end-of-cycle state — the mode cross_check() uses.
//  - timed (period > 0): the edge cuts the event stream at t = k*period.
//    Late arrivals are *missed* by captures, which is what makes the STA
//    min_period claim checkable dynamically (see crosscheck.hpp).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "evsim/annotate.hpp"
#include "evsim/logic.hpp"
#include "evsim/vcd.hpp"
#include "evsim/wheel.hpp"
#include "netlist/activity.hpp"
#include "netlist/bound.hpp"
#include "netlist/netlist.hpp"
#include "netlist/sim.hpp"

namespace limsynth::evsim {

struct EvsimOptions {
  /// Clock period in seconds; 0 selects quiesce mode (see header).
  double period = 0.0;
  /// Inertial delay: a gate output re-evaluation preempts its own pending
  /// event (short pulses are swallowed and counted as filtered glitches).
  /// When false, transport delay: every scheduled transition lands.
  bool inertial = true;
  /// Power-up state: X (hardware-honest) or 0 (settle-engine-equivalent,
  /// required by cross_check).
  bool x_init = true;
  /// Slack added to setup windows before flagging a violation, absorbing
  /// the <=0.5 fs/arc integer rounding of the annotation (s).
  double setup_guard = 64e-15;
  /// Event budget per cycle; 0 = automatic (1000 * gate count). Exceeding
  /// it throws Error(kResourceExhausted) naming the hottest net.
  std::uint64_t max_events_per_cycle = 0;
};

struct GlitchStats {
  /// Pulses swallowed by inertial filtering (never reached a net).
  std::uint64_t filtered = 0;
  /// Hazard transitions that landed on nets beyond the one functional
  /// change per cycle (these cost real energy).
  std::uint64_t propagated = 0;
};

struct SetupViolation {
  std::string endpoint;  // sta::StaResult::critical_endpoint formatting
  std::uint64_t count = 0;
};

class EventSimulator {
 public:
  EventSimulator(const netlist::Netlist& nl, const tech::StdCellLib& cells,
                 TimingAnnotation annotation,
                 const EvsimOptions& options = {});
  ~EventSimulator();

  /// Attaches an unmodified netlist::MacroModel; it sees this engine
  /// through the Simulator macro-port adapter.
  void attach(netlist::InstId inst, std::shared_ptr<netlist::MacroModel> model);
  /// The model attached to `inst`, or nullptr. Fault injectors use this to
  /// reach the MacroModel peek/poke state surface of a live run.
  netlist::MacroModel* model(netlist::InstId inst) const;

  /// Applies a primary-input change at the current time (takes effect in
  /// the upcoming cycle, like Simulator::set_input before settle()).
  void set_input(netlist::NetId net, bool value);
  void set_bus(const std::vector<netlist::NetId>& bus, std::uint64_t value);

  /// Advances one clock cycle (events, rising edge, captures).
  void cycle();
  void run(std::uint64_t cycles);

  Logic value(netlist::NetId net) const {
    return values_[static_cast<std::size_t>(net)];
  }
  /// Bus value; X bits read as 0 (check bus_has_x when it matters).
  std::uint64_t bus_value(const std::vector<netlist::NetId>& bus) const;
  bool bus_has_x(const std::vector<netlist::NetId>& bus) const;
  Logic flop_state(netlist::InstId inst) const;

  std::uint64_t cycles() const { return cycles_; }
  TimeFs now_fs() const { return t_now_; }
  std::uint64_t events_processed() const { return events_processed_; }

  const GlitchStats& glitch_stats() const { return glitch_; }
  std::uint64_t toggles(netlist::NetId net) const {
    return toggle_counts_[static_cast<std::size_t>(net)];
  }
  std::uint64_t glitch_toggles(netlist::NetId net) const {
    return glitch_counts_[static_cast<std::size_t>(net)];
  }

  /// Setup checks run in timed mode only (quiesce mode has no deadline).
  std::uint64_t setup_violations() const { return total_violations_; }
  /// Per-endpoint violation counts, most-violated first.
  std::vector<SetupViolation> violations_by_endpoint() const;
  bool endpoint_violated(const std::string& name) const;

  /// Switching activity in the engine-independent record consumed by
  /// power::analyze_power (includes glitch transitions).
  netlist::Activity activity() const;

  /// Streams value changes as VCD to `os` (which must outlive the
  /// simulator). Call before the first cycle(); the header dumps the
  /// current (power-up) state.
  void stream_vcd(std::ostream& os);
  /// Emits the closing timestamp and flushes (no-op without stream_vcd).
  void finish_vcd();

  const netlist::Netlist& netlist() const { return nl_; }
  /// The annotation this engine replays (fault-site enumeration reads the
  /// gate and flop tables from here).
  const TimingAnnotation& annotation() const { return ann_; }
  /// Sequential instances in annotation order.
  std::vector<netlist::InstId> flop_instances() const;

  // --- transient-fault surface (src/seu) ---

  /// Single-event upset in a sequential element: inverts the stored state
  /// and launches the corrupted Q at the clock-to-Q arc delay, as if the
  /// storage node flipped at the current time. X state upsets to 1.
  void flip_flop(netlist::InstId inst);

  /// Arms one single-event transient: during the next cycle(), `net` is
  /// inverted `lead_fs` before the capture edge and re-driven to its
  /// functional value `width_fs` later. The pulse propagates through real
  /// arc delays, so inertial filtering can swallow it and the capture
  /// window decides whether it is latched — exactly the masking physics a
  /// SET campaign wants to measure. One pulse may be armed at a time.
  void arm_set_pulse(netlist::NetId net, TimeFs width_fs, TimeFs lead_fs);

  // Macro-port surface used by the adapter (public for the adapter, not
  // meant for testbenches).
  Logic pin_logic(netlist::InstId inst, const std::string& pin) const;
  void macro_drive(netlist::InstId inst, const std::string& pin, bool value);
  void note_macro_access(netlist::InstId inst);

 private:
  struct Fanin {
    std::uint32_t gate;  // index into ann_.gates
    std::uint8_t input;  // input position on that gate
  };

  void prime();
  void apply_change(netlist::NetId net, Logic v, TimeFs t);
  void eval_and_schedule(std::uint32_t gate, std::uint8_t input,
                         TimeFs t_cause);
  void schedule_output(netlist::NetId net, Logic v, TimeFs te);
  void drain(TimeFs horizon, bool bounded);
  void fire_set(TimeFs t_pulse);
  void edge(TimeFs t_edge);
  void check_setup(TimeFs t_edge);
  void finalize_cycle_glitches();
  void touch_net(netlist::NetId net);

  const netlist::Netlist& nl_;
  TimingAnnotation ann_;
  EvsimOptions opt_;
  bool timed_ = false;
  TimeFs period_fs_ = 0;

  EventWheel wheel_;
  std::vector<Logic> values_;
  std::vector<std::vector<Fanin>> fanout_;  // net -> gate inputs it feeds
  std::vector<EventWheel::Handle> pending_;  // inertial: 1 event max/net
  std::vector<Logic> transport_last_;        // transport: last scheduled

  std::vector<Logic> flop_state_;            // parallel to ann_.flops
  std::map<netlist::InstId, std::size_t> flop_index_;
  std::map<netlist::InstId, std::size_t> macro_index_;
  /// Shared macro binding table (same machinery as netlist::Simulator).
  netlist::MacroBindings macros_;
  std::unique_ptr<netlist::Simulator> adapter_;
  std::vector<std::unordered_map<std::string, std::size_t>> macro_pin_index_;

  std::vector<std::vector<std::size_t>> endpoints_on_net_;
  std::vector<std::uint64_t> endpoint_violations_;
  std::uint64_t total_violations_ = 0;

  std::vector<std::uint64_t> toggle_counts_;
  std::vector<std::uint64_t> glitch_counts_;
  std::vector<std::uint32_t> cycle_transitions_;
  std::vector<Logic> cycle_start_value_;
  std::vector<netlist::NetId> touched_;
  std::vector<TimeFs> last_change_;

  // Armed single-event transient (applied by the next cycle()).
  bool set_armed_ = false;
  netlist::NetId set_net_ = netlist::kNoNet;
  TimeFs set_width_fs_ = 0;
  TimeFs set_lead_fs_ = 0;

  GlitchStats glitch_;
  std::uint64_t cycles_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t cycle_events_ = 0;
  std::uint64_t event_budget_ = 0;
  TimeFs t_now_ = 0;
  TimeFs next_edge_ = 0;
  TimeFs edge_time_ = 0;  // during edge(): when macro drives launch

  std::unique_ptr<VcdWriter> vcd_;
};

}  // namespace limsynth::evsim
