#include "arch/cores.hpp"

#include <algorithm>
#include <map>
#include <tuple>
#include <unordered_map>

#include "util/error.hpp"

namespace limsynth::arch {

namespace {

using spgemm::BlockTask;
using spgemm::Entry;
using spgemm::SparseMatrix;

}  // namespace

SparseMatrix lim_spgemm(const SparseMatrix& a, const SparseMatrix& b,
                        const CoreConfig& cfg, CoreStats* stats) {
  LIMS_CHECK(a.cols() == b.rows());
  CoreStats st;
  std::vector<std::tuple<int, int, double>> trips;

  const auto tasks = spgemm::make_block_tasks(a, b, cfg.blocking);
  int cached_row_block = -1;
  spgemm::BlockedColumns a_block;
  std::int64_t nnz_a_block = 0;

  for (const BlockTask& task : tasks) {
    bool new_block = false;
    if (task.row_block_index != cached_row_block) {
      a_block = spgemm::slice_rows(a, task.row_begin, task.row_end);
      cached_row_block = task.row_block_index;
      new_block = true;
      nnz_a_block = 0;
      for (const auto& col_entries : a_block.entries)
        nnz_a_block += static_cast<std::int64_t>(col_entries.size());
    }
    const int n_cols = task.col_end - task.col_begin;

    // Per-column accumulation state.
    struct ColState {
      std::unordered_map<int, double> values;  // exact accumulation
      std::unordered_map<int, int> cam_epoch;  // row -> epoch when inserted
      int epoch = 0;
      int occupancy = 0;
      std::int64_t spilled = 0;
    };
    std::vector<ColState> cols(static_cast<std::size_t>(n_cols));

    // B entries per k for this stripe: k -> list of (column offset, value).
    std::map<int, std::vector<std::pair<int, double>>> by_k;
    std::int64_t nnz_b_stripe = 0;
    for (int j = task.col_begin; j < task.col_end; ++j) {
      for (int kb = b.col_begin(j); kb < b.col_end(j); ++kb) {
        by_k[b.row_index(kb)].emplace_back(j - task.col_begin, b.value(kb));
        ++nnz_b_stripe;
      }
    }

    std::int64_t compute = 0;

    for (const auto& [k, targets] : by_k) {
      const auto& a_col = a_block.entries[static_cast<std::size_t>(k)];
      if (a_col.empty()) continue;
      compute += 1;  // load the B-row values into the column multipliers
      for (const Entry& ae : a_col) {
        // One broadcast cycle: every active column matches in parallel.
        compute += 1;
        ++st.broadcasts;
        for (const auto& [cj, bv] : targets) {
          ColState& col = cols[static_cast<std::size_t>(cj)];
          ++st.searches;
          ++st.multiplies;
          const auto it = col.cam_epoch.find(ae.row);
          const bool hit = (it != col.cam_epoch.end() && it->second == col.epoch);
          if (!hit) {
            if (col.occupancy == cfg.cam_entries) {
              // Overflow: the CAM contents drain into the spill FIFO in the
              // background (double-buffered), costing a merge pass at drain
              // rather than a stall here.
              ++st.spills;
              st.spilled_entries += col.occupancy;
              col.spilled += col.occupancy;
              col.occupancy = 0;
              ++col.epoch;
            }
            ++st.inserts;
            col.cam_epoch[ae.row] = col.epoch;
            ++col.occupancy;
          }
          col.values[ae.row] += ae.value * bv;
        }
      }
    }

    // Drain: assemble columns into C through the vertical CAM; spilled
    // segments take an extra merge pass. Partially hidden behind the next
    // stripe (double-buffered).
    std::int64_t drain = 0;
    for (int cj = 0; cj < n_cols; ++cj) {
      ColState& col = cols[static_cast<std::size_t>(cj)];
      if (col.values.empty()) continue;
      drain += 2;  // vertical CAM column-index match + setup
      drain += static_cast<std::int64_t>(col.values.size());  // read out
      drain += 2 * col.spilled;  // re-stream spilled segments through CAM
      std::vector<std::pair<int, double>> sorted(col.values.begin(),
                                                 col.values.end());
      std::sort(sorted.begin(), sorted.end());
      for (const auto& [row, v] : sorted) {
        trips.emplace_back(row + task.row_begin, cj + task.col_begin, v);
        ++st.output_entries;
      }
    }
    drain = static_cast<std::int64_t>(
        static_cast<double>(drain) * (1.0 - cfg.drain_overlap));

    // On-chip buffer fill from the 3D DRAM stack, double-buffered against
    // compute. The A block is loaded once per row block and reused across
    // all 32-column stripes.
    const std::int64_t load =
        dram_stream_cycles(cfg.dram, nnz_b_stripe) +
        (new_block ? dram_stream_cycles(cfg.dram, nnz_a_block) : 0);
    st.load_cycles += load;
    st.cycles += std::max(compute, load) + drain;
    ++st.block_tasks;
  }

  if (stats != nullptr) *stats = st;
  return SparseMatrix::from_triplets(a.rows(), b.cols(), std::move(trips));
}

SparseMatrix heap_spgemm(const SparseMatrix& a, const SparseMatrix& b,
                         const CoreConfig& cfg, CoreStats* stats) {
  LIMS_CHECK(a.cols() == b.rows());
  CoreStats st;
  std::vector<std::tuple<int, int, double>> trips;

  const auto tasks = spgemm::make_block_tasks(a, b, cfg.blocking);
  int cached_row_block = -1;
  spgemm::BlockedColumns a_block;
  std::int64_t nnz_a_block = 0;

  for (const BlockTask& task : tasks) {
    bool new_block = false;
    if (task.row_block_index != cached_row_block) {
      a_block = spgemm::slice_rows(a, task.row_begin, task.row_end);
      cached_row_block = task.row_block_index;
      new_block = true;
      nnz_a_block = 0;
      for (const auto& col_entries : a_block.entries)
        nnz_a_block += static_cast<std::int64_t>(col_entries.size());
    }
    std::int64_t nnz_b_stripe = 0;
    std::int64_t compute = 0;

    for (int j = task.col_begin; j < task.col_end; ++j) {
      // Gather the lists to merge: one per nonzero B(k, j).
      struct List {
        const std::vector<Entry>* entries;
        double scale;
        std::size_t pos = 0;
      };
      std::vector<List> lists;
      for (int kb = b.col_begin(j); kb < b.col_end(j); ++kb) {
        ++nnz_b_stripe;
        const int k = b.row_index(kb);
        const auto& a_col = a_block.entries[static_cast<std::size_t>(k)];
        if (a_col.empty()) continue;
        lists.push_back({&a_col, b.value(kb), 0});
        st.fifo_loads += static_cast<std::int64_t>(a_col.size());
        compute += static_cast<std::int64_t>(a_col.size());  // fill FIFO
      }
      if (lists.empty()) continue;

      // Sorted head FIFO: (row, list index), smallest row at the front.
      // Building it costs one shift (read+write pair) per displaced entry.
      std::vector<std::pair<int, std::size_t>> heads;
      for (std::size_t l = 0; l < lists.size(); ++l) {
        const int row = (*lists[l].entries)[0].row;
        auto it = std::lower_bound(
            heads.begin(), heads.end(), std::make_pair(row, l));
        const auto displaced =
            static_cast<std::int64_t>(heads.end() - it);
        st.shift_cycles += 2 * displaced;
        compute += 2 * displaced + 1;
        heads.insert(it, {row, l});
      }

      // Merge.
      int last_row = -1;
      double acc = 0.0;
      auto emit = [&]() {
        if (last_row >= 0) {
          trips.emplace_back(last_row + task.row_begin, j, acc);
          ++st.output_entries;
        }
      };
      while (!heads.empty()) {
        const auto [row, l] = heads.front();
        heads.erase(heads.begin());
        ++st.pops;
        ++st.multiplies;
        compute += 2;  // FIFO read + pointer update, fused multiply-accum.
        const Entry& e = (*lists[l].entries)[lists[l].pos];
        const double product = e.value * lists[l].scale;
        if (row == last_row) {
          acc += product;
        } else {
          emit();
          if (last_row >= 0) compute += 1;  // result write to output SRAM
          last_row = row;
          acc = product;
        }
        // Advance the list; re-insert its new head with FIFO shifting.
        if (++lists[l].pos < lists[l].entries->size()) {
          const int nrow = (*lists[l].entries)[lists[l].pos].row;
          auto it = std::lower_bound(heads.begin(), heads.end(),
                                     std::make_pair(nrow, l));
          const auto displaced =
              static_cast<std::int64_t>(heads.end() - it);
          st.shift_cycles += 2 * displaced;
          compute += 2 * displaced + 1;
          heads.insert(it, {nrow, l});
        }
      }
      emit();
      // Re-arrange (reset) the FIFO bank for the next column.
      compute += static_cast<std::int64_t>(lists.size());
    }

    const std::int64_t load =
        dram_stream_cycles(cfg.dram, nnz_b_stripe) +
        (new_block ? dram_stream_cycles(cfg.dram, nnz_a_block) : 0);
    st.load_cycles += load;
    st.cycles += std::max(compute, load);
    ++st.block_tasks;
  }

  if (stats != nullptr) *stats = st;
  return SparseMatrix::from_triplets(a.rows(), b.cols(), std::move(trips));
}

}  // namespace limsynth::arch
