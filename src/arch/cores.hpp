// Cycle-level, functionally exact models of the two fabricated SpGEMM
// accelerators (paper §4/§5):
//
//  * LiM core — 32 "horizontal" CAM columns (16-entry, 10-bit row index,
//    values in a scratchpad SRAM with embedded multiply-add) plus one
//    "vertical" CAM for column assembly. An A-column element is broadcast
//    once; every active column does a single-cycle match-and-update.
//    CAM overflow flushes to a spill buffer and is re-merged at drain.
//
//  * Heap core — conventional column-by-column multi-way merge where the
//    priority queue is built from FIFO SRAMs: inserting a successor shifts
//    the sorted FIFO one element per (read+write) cycle pair, and the
//    FIFOs are re-arranged at every column — the latency the paper blames
//    for the baseline's 7-250x loss.
//
// Both models compute the exact product (verified against the Gustavson
// reference in tests) while counting cycles and micro-operations.
#pragma once

#include <cstdint>

#include "arch/dram.hpp"
#include "spgemm/blocking.hpp"
#include "spgemm/sparse.hpp"

namespace limsynth::arch {

struct CoreConfig {
  spgemm::BlockingConfig blocking;  // 1024-row blocks x 32-column stripes
  int cam_entries = 16;             // horizontal CAM capacity
  /// Fraction of drain cycles hidden behind the next stripe's compute
  /// (double-buffered CAM/scratchpad pair).
  double drain_overlap = 0.5;
  /// 3D-stacked DRAM feeding the on-chip A/B buffers ([12]).
  DramConfig dram;
};

struct CoreStats {
  std::int64_t cycles = 0;

  // LiM micro-ops.
  std::int64_t broadcasts = 0;   // A-element broadcast cycles
  std::int64_t searches = 0;     // CAM search-and-update ops (all columns)
  std::int64_t inserts = 0;      // new-entry ops
  std::int64_t spills = 0;       // CAM overflow flushes
  std::int64_t spilled_entries = 0;

  // Heap micro-ops.
  std::int64_t pops = 0;         // min extractions (with fused MAC)
  std::int64_t shift_cycles = 0; // FIFO shift read+write cycles
  std::int64_t fifo_loads = 0;   // list elements loaded into FIFOs

  // Common.
  std::int64_t multiplies = 0;
  std::int64_t output_entries = 0;
  std::int64_t block_tasks = 0;
  std::int64_t load_cycles = 0;  // on-chip buffer fill (overlapped)

  /// Average concurrently-active CAM columns per broadcast cycle.
  double avg_active_columns() const {
    return broadcasts > 0
               ? static_cast<double>(searches) / static_cast<double>(broadcasts)
               : 0.0;
  }
};

/// C = A * B on the LiM CAM core.
spgemm::SparseMatrix lim_spgemm(const spgemm::SparseMatrix& a,
                                const spgemm::SparseMatrix& b,
                                const CoreConfig& config, CoreStats* stats);

/// C = A * B on the heap/FIFO baseline core.
spgemm::SparseMatrix heap_spgemm(const spgemm::SparseMatrix& a,
                                 const spgemm::SparseMatrix& b,
                                 const CoreConfig& config, CoreStats* stats);

}  // namespace limsynth::arch
