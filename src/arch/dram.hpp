// 3D-stacked DRAM streaming model (Zhu et al. [12], the memory system the
// paper's chips assume): sparse sub-blocks are laid out along DRAM rows so
// block fetches stream at full TSV bandwidth, paying an activation only on
// row-buffer misses.
#pragma once

#include <cstdint>

#include "util/error.hpp"

namespace limsynth::arch {

struct DramConfig {
  /// Matrix elements (index+value) delivered per accelerator cycle over
  /// the TSV bus when streaming from an open row.
  double words_per_cycle = 4.0;
  /// Elements per DRAM row (row-buffer reach for one activation).
  int row_words = 256;
  /// Cycles per activation (ACT + RCD at the accelerator clock).
  int t_activate = 12;
  /// Extra activations per block for non-contiguous starts.
  int t_block_setup = 2;
};

/// Cycle cost of streaming `words` elements of one sub-block. The [12]
/// layout makes blocks row-contiguous, so misses = ceil(words/row_words).
inline std::int64_t dram_stream_cycles(const DramConfig& cfg,
                                       std::int64_t words) {
  LIMS_CHECK(words >= 0);
  if (words == 0) return 0;
  const std::int64_t transfers = static_cast<std::int64_t>(
      static_cast<double>(words) / cfg.words_per_cycle + 0.999999);
  const std::int64_t activations =
      (words + cfg.row_words - 1) / cfg.row_words + cfg.t_block_setup;
  return transfers + activations * cfg.t_activate;
}

/// Cycle cost if the same data were scattered randomly across rows (no
/// [12] blocking): every burst of words_per_cycle risks a new row. Used to
/// quantify what the predictable-access layout buys.
inline std::int64_t dram_random_cycles(const DramConfig& cfg,
                                       std::int64_t words) {
  LIMS_CHECK(words >= 0);
  if (words == 0) return 0;
  const std::int64_t transfers = static_cast<std::int64_t>(
      static_cast<double>(words) / cfg.words_per_cycle + 0.999999);
  return transfers + words * cfg.t_activate / 8;  // 1-in-8 bursts miss
}

}  // namespace limsynth::arch
