#include "arch/chip.hpp"

#include "brick/estimator.hpp"
#include "brick/library_gen.hpp"
#include "liberty/characterize.hpp"
#include "netlist/generators.hpp"
#include "util/error.hpp"

namespace limsynth::arch {

namespace {

using netlist::Builder;
using netlist::NetId;

/// Activity factors averaged over the paper's test vectors: of the 32
/// horizontal CAM columns, on average this many search per broadcast
/// cycle, and one scratchpad update + MAC accompanies each.
constexpr double kAvgActiveCams = 6.0;
constexpr double kBufferReadsPerCycle = 2.0;
/// FIFO shifting in the baseline: the sorted FIFOs shift many entries in
/// parallel across banks every cycle — the "wasted energy" of the paper's
/// §5 — so the average concurrent SRAM (read+write) op count is high.
constexpr double kAvgFifoOps = 12.0;
constexpr double kClockOverhead = 0.15;  // clock tree + misc fraction

struct BrickEnergies {
  brick::BrickEstimate cam;
  brick::BrickEstimate scratch;
  brick::BrickEstimate fifo;
  brick::BrickEstimate buffer;
  brick::Brick cam_brick;
  brick::Brick scratch_brick;
};

BrickEnergies brick_energies(const tech::Process& process) {
  BrickEnergies e;
  // Row-index / data array sizes chosen by the paper's design-space sweep:
  // 16x10 bits, consistent with [12].
  e.cam_brick =
      brick::compile_brick({tech::BitcellKind::kCamNor10T, 16, 10, 1}, process);
  e.scratch_brick =
      brick::compile_brick({tech::BitcellKind::kSram8T, 16, 10, 1}, process);
  const brick::Brick fifo =
      brick::compile_brick({tech::BitcellKind::kSram8T, 16, 10, 1}, process);
  // On-chip A/B buffers: 1024 words x 32 bits (index+value packed), built
  // from 64x32 bricks stacked 16x. Identical in both chips.
  const brick::Brick buffer =
      brick::compile_brick({tech::BitcellKind::kSram8T, 64, 32, 16}, process);
  e.cam = brick::estimate_brick(e.cam_brick);
  e.scratch = brick::estimate_brick(e.scratch_brick);
  e.fifo = brick::estimate_brick(fifo);
  e.buffer = brick::estimate_brick(buffer);
  return e;
}

/// LiM reference slice: CAM -> detect -> scratchpad; scratchpad DO ->
/// 10x10 multiply + 20-bit accumulate -> write-back into WDATA.
lim::FlowReport lim_reference_flow(const tech::Process& process,
                                   const tech::StdCellLib& cells) {
  netlist::Netlist nl("lim_core_slice");
  liberty::Library lib = liberty::characterize_stdcell_library(cells);
  const brick::BrickSpec cam_spec{tech::BitcellKind::kCamNor10T, 16, 10, 1};
  const brick::BrickSpec sram_spec{tech::BitcellKind::kSram8T, 16, 10, 1};
  lib.add(brick::make_brick_libcell(brick::compile_brick(cam_spec, process)));
  lib.add(brick::make_brick_libcell(brick::compile_brick(sram_spec, process)));

  const NetId clk = nl.add_net("clk");
  nl.set_clock(clk);
  nl.add_port("clk", netlist::PortDir::kInput, clk);
  Builder b(nl, "lim");

  // Broadcast row index arrives registered.
  std::vector<NetId> idx_in = nl.make_bus("idx", 10);
  for (int i = 0; i < 10; ++i)
    nl.add_port("idx" + std::to_string(i), netlist::PortDir::kInput,
                idx_in[static_cast<std::size_t>(i)]);
  const std::vector<NetId> idx = b.registers(idx_in, clk);

  // CAM: search the row index, produce MATCH + matching entry index.
  std::vector<netlist::Connection> cam_conns{{"CK", clk}};
  const NetId zero = b.tie0();
  for (int r = 0; r < 16; ++r) {
    cam_conns.push_back({"RWL[" + std::to_string(r) + "]", zero});
    cam_conns.push_back({"WWL[" + std::to_string(r) + "]", zero});
  }
  for (int j = 0; j < 10; ++j) {
    cam_conns.push_back({"WDATA[" + std::to_string(j) + "]", zero});
    cam_conns.push_back(
        {"SDATA[" + std::to_string(j) + "]", idx[static_cast<std::size_t>(j)]});
  }
  const NetId match = nl.add_net("match");
  cam_conns.push_back({"MATCH", match});
  std::vector<NetId> cam_do = nl.make_bus("cam_do", 10);
  for (int j = 0; j < 10; ++j)
    cam_conns.push_back(
        {"DO[" + std::to_string(j) + "]", cam_do[static_cast<std::size_t>(j)]});
  nl.add_instance("hcam", cam_spec.name(), cam_conns);

  // Mismatch-detect block acting as priority decoder for the scratchpad
  // (Fig. 5): decode the matching entry index into the scratchpad RWL/WWL.
  const std::vector<NetId> entry(cam_do.begin(), cam_do.begin() + 4);
  const std::vector<NetId> rwl = b.decoder(entry, match);
  const std::vector<NetId> wwl = b.decoder(entry, match);

  // Scratchpad SRAM holding the values.
  std::vector<netlist::Connection> sp_conns{{"CK", clk}};
  for (int r = 0; r < 16; ++r) {
    sp_conns.push_back({"RWL[" + std::to_string(r) + "]",
                        rwl[static_cast<std::size_t>(r)]});
    sp_conns.push_back({"WWL[" + std::to_string(r) + "]",
                        wwl[static_cast<std::size_t>(r)]});
  }
  std::vector<NetId> sp_do = nl.make_bus("sp_do", 10);
  for (int j = 0; j < 10; ++j)
    sp_conns.push_back(
        {"DO[" + std::to_string(j) + "]", sp_do[static_cast<std::size_t>(j)]});

  // Multiply-and-add write-back: value * broadcast operand + old value.
  std::vector<NetId> opa_in = nl.make_bus("opa", 10);
  for (int i = 0; i < 10; ++i)
    nl.add_port("opa" + std::to_string(i), netlist::PortDir::kInput,
                opa_in[static_cast<std::size_t>(i)]);
  const std::vector<NetId> opa = b.registers(opa_in, clk);
  const std::vector<NetId> product = b.multiply(sp_do, opa);  // 20 bits
  const std::vector<NetId> old_ext = [&] {
    std::vector<NetId> v = sp_do;
    while (v.size() < product.size()) v.push_back(b.tie0());
    return v;
  }();
  const std::vector<NetId> sum = b.add(product, old_ext, netlist::kNoNet);
  for (int j = 0; j < 10; ++j)
    sp_conns.push_back({"WDATA[" + std::to_string(j) + "]",
                        sum[static_cast<std::size_t>(j)]});
  nl.add_instance("scratch", sram_spec.name(), sp_conns);

  // Observe the MAC result so it is not swept.
  for (int j = 0; j < 4; ++j)
    nl.add_port("obs" + std::to_string(j), netlist::PortDir::kOutput,
                sum[static_cast<std::size_t>(10 + j)]);

  lim::FlowOptions opt;
  opt.activity_cycles = 0;  // timing/area only
  return lim::run_flow(nl, lib, cells, process, {}, {}, opt);
}

/// Baseline reference slice: FIFO SRAM DO -> 10-bit comparator + shift
/// mux network -> FIFO WDATA (the sorted-FIFO insert step).
lim::FlowReport baseline_reference_flow(const tech::Process& process,
                                        const tech::StdCellLib& cells) {
  netlist::Netlist nl("heap_core_slice");
  liberty::Library lib = liberty::characterize_stdcell_library(cells);
  const brick::BrickSpec fifo_spec{tech::BitcellKind::kSram8T, 16, 10, 1};
  lib.add(brick::make_brick_libcell(brick::compile_brick(fifo_spec, process)));

  const NetId clk = nl.add_net("clk");
  nl.set_clock(clk);
  nl.add_port("clk", netlist::PortDir::kInput, clk);
  Builder b(nl, "heap");

  std::vector<NetId> key_in = nl.make_bus("key", 10);
  for (int i = 0; i < 10; ++i)
    nl.add_port("key" + std::to_string(i), netlist::PortDir::kInput,
                key_in[static_cast<std::size_t>(i)]);
  const std::vector<NetId> key = b.registers(key_in, clk);

  // Four FIFO banks; one pop-min + insert resolves in a single cycle:
  // read all heads, select the minimum through a comparator tree, compare
  // the insert key against it, and write back through the shift mux.
  std::vector<NetId> head_ptr = nl.make_bus("hp", 4);
  for (int i = 0; i < 4; ++i)
    nl.add_port("hp" + std::to_string(i), netlist::PortDir::kInput,
                head_ptr[static_cast<std::size_t>(i)]);
  const std::vector<NetId> ptr = b.registers(head_ptr, clk);
  const std::vector<NetId> rwl = b.decoder(ptr);
  const std::vector<NetId> wwl = b.decoder(ptr, b.tie1());

  std::vector<std::vector<NetId>> heads;
  std::vector<std::vector<netlist::Connection>> bank_conns(4);
  for (int bank = 0; bank < 4; ++bank) {
    auto& conns = bank_conns[static_cast<std::size_t>(bank)];
    conns.push_back({"CK", clk});
    for (int r = 0; r < 16; ++r) {
      conns.push_back({"RWL[" + std::to_string(r) + "]",
                       rwl[static_cast<std::size_t>(r)]});
      conns.push_back({"WWL[" + std::to_string(r) + "]",
                       wwl[static_cast<std::size_t>(r)]});
    }
    std::vector<NetId> dos =
        nl.make_bus("head" + std::to_string(bank), 10);
    heads.push_back(dos);
    for (int j = 0; j < 10; ++j)
      conns.push_back(
          {"DO[" + std::to_string(j) + "]", dos[static_cast<std::size_t>(j)]});
  }

  auto min_of = [&](const std::vector<NetId>& x, const std::vector<NetId>& y) {
    const NetId lt = b.less_than(x, y);
    std::vector<NetId> out;
    out.reserve(x.size());
    for (std::size_t j = 0; j < x.size(); ++j)
      out.push_back(b.mux2(y[j], x[j], lt));  // lt ? x : y
    return out;
  };
  const std::vector<NetId> min01 = min_of(heads[0], heads[1]);
  const std::vector<NetId> min23 = min_of(heads[2], heads[3]);
  const std::vector<NetId> min_all = min_of(min01, min23);

  // Insert-position resolution: compare the successor key against the
  // minimum, steer the shift network accordingly.
  const NetId lt = b.less_than(key, min_all);
  std::vector<NetId> wdata;
  wdata.reserve(10);
  for (int j = 0; j < 10; ++j)
    wdata.push_back(b.mux2(min_all[static_cast<std::size_t>(j)],
                           key[static_cast<std::size_t>(j)], lt));
  for (int bank = 0; bank < 4; ++bank) {
    auto& conns = bank_conns[static_cast<std::size_t>(bank)];
    for (int j = 0; j < 10; ++j)
      conns.push_back({"WDATA[" + std::to_string(j) + "]",
                       wdata[static_cast<std::size_t>(j)]});
    nl.add_instance("fifo" + std::to_string(bank), fifo_spec.name(),
                    std::move(conns));
  }
  nl.add_port("obs_lt", netlist::PortDir::kOutput, lt);

  lim::FlowOptions opt;
  opt.activity_cycles = 0;
  return lim::run_flow(nl, lib, cells, process, {}, {}, opt);
}

}  // namespace

ChipModel build_lim_chip(const tech::Process& process,
                         const tech::StdCellLib& cells) {
  const BrickEnergies be = brick_energies(process);
  ChipModel chip;
  chip.name = "LiM CAM-SpGEMM";
  chip.timing = lim_reference_flow(process, cells);
  chip.fmax = chip.timing.fmax;

  chip.e_cam_match = be.cam.match_energy;
  chip.e_sram_read = be.scratch.read_energy;
  chip.e_sram_write = be.scratch.write_energy;
  chip.e_buffer_read = be.buffer.read_energy;
  // MAC + detect logic energy: approximate with the flow's cell area times
  // a switching-energy density (the slice was run without stimulus).
  chip.e_logic = 0.5e-12;  // J/cycle per active MAC lane

  const double per_cycle =
      kAvgActiveCams *
          (chip.e_cam_match + 0.5 * (chip.e_sram_read + chip.e_sram_write) +
           chip.e_logic) +
      kBufferReadsPerCycle * chip.e_buffer_read;
  chip.energy_per_cycle = per_cycle * (1.0 + kClockOverhead);

  // Areas: 32 horizontal CAM+scratch columns + vertical CAM + MAC lanes.
  const double column_area =
      be.cam_brick.layout.area + be.scratch_brick.layout.area;
  chip.core_area = 33.0 * column_area + 32.0 * 1850e-12;
  chip.chip_area = chip.core_area + 2.0 * be.buffer.bank_area + 0.6e-6;
  // 33 CAM + 32 scratch columns of 16x10 bits, plus two 1024x32 buffers.
  chip.mem_bits = 33.0 * 160.0 + 32.0 * 160.0 + 2.0 * 1024.0 * 32.0;
  return chip;
}

ChipModel build_baseline_chip(const tech::Process& process,
                              const tech::StdCellLib& cells) {
  const BrickEnergies be = brick_energies(process);
  ChipModel chip;
  chip.name = "non-LiM heap SpGEMM";
  chip.timing = baseline_reference_flow(process, cells);
  chip.fmax = chip.timing.fmax;

  chip.e_sram_read = be.fifo.read_energy;
  chip.e_sram_write = be.fifo.write_energy;
  chip.e_buffer_read = be.buffer.read_energy;
  chip.e_logic = 0.25e-12;  // comparator + control per cycle

  const double per_cycle =
      kAvgFifoOps * (chip.e_sram_read + chip.e_sram_write) + chip.e_logic +
      kBufferReadsPerCycle * chip.e_buffer_read;
  chip.energy_per_cycle = per_cycle * (1.0 + kClockOverhead);

  // FIFO banks + merge logic occupy comparable area to the CAM columns
  // (paper: 0.33 mm^2 core vs 0.39 mm^2).
  chip.core_area = 64.0 * be.scratch_brick.layout.area + 26.0 * 2000e-12;
  chip.chip_area = chip.core_area + 2.0 * be.buffer.bank_area + 0.6e-6;
  // 64 FIFO bricks of 16x10 bits, plus the same two 1024x32 buffers.
  chip.mem_bits = 64.0 * 160.0 + 2.0 * 1024.0 * 32.0;
  return chip;
}

BenchmarkResult run_benchmark(const ChipModel& chip, bool is_lim,
                              const spgemm::SparseMatrix& a,
                              const CoreConfig& config,
                              spgemm::SparseMatrix* product) {
  BenchmarkResult out;
  spgemm::SparseMatrix c =
      is_lim ? lim_spgemm(a, a, config, &out.stats)
             : heap_spgemm(a, a, config, &out.stats);
  if (product != nullptr) *product = std::move(c);
  out.seconds = static_cast<double>(out.stats.cycles) / chip.fmax;
  out.joules = static_cast<double>(out.stats.cycles) * chip.energy_per_cycle;
  return out;
}

}  // namespace limsynth::arch
