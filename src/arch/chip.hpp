// Chip-level models of the two fabricated SpGEMM accelerators.
//
// f_max comes from running the LiM physical-synthesis flow on a gate-level
// reference slice of each core's critical loop:
//   LiM:      CAM match -> detect -> scratchpad wordline; and
//             scratchpad DO -> multiply-add -> write-back (the
//             single-cycle "multiply and add or new entry" of Fig. 5)
//   baseline: FIFO SRAM DO -> comparator/shift network -> FIFO WDATA
//
// Per-cycle energy is composed from the generated brick models (CAM
// search, SRAM read/write, buffer access) plus flow-measured logic power,
// with documented average activity factors standing in for the paper's
// "averaged out of multiple test vectors".
#pragma once

#include "arch/cores.hpp"
#include "fault/soft.hpp"
#include "lim/flow.hpp"
#include "tech/process.hpp"
#include "tech/stdcell.hpp"

namespace limsynth::arch {

struct ChipModel {
  std::string name;
  double fmax = 0.0;              // Hz
  double energy_per_cycle = 0.0;  // J (average over vectors)
  double power() const { return energy_per_cycle * fmax; }
  double core_area = 0.0;         // m^2, computation core block
  double chip_area = 0.0;         // m^2, incl. A/B buffers + pads

  // Soft-error exposure: total storage bits across the chip's arrays
  // (CAM/scratch/FIFO columns plus the A/B buffers). The raw SEU budget
  // follows from the process upset rates; architectural derating (AVF)
  // is measured by src/seu injection campaigns on gate-level slices.
  double mem_bits = 0.0;
  double raw_seu_fit(const tech::Process& process) const {
    return fault::soft_error_budget(process, mem_bits, 0.0, 0.0).fit_mem;
  }

  // Energy composition (diagnostics / bench_section5).
  double e_cam_match = 0.0;   // per active CAM column search
  double e_sram_read = 0.0;
  double e_sram_write = 0.0;
  double e_buffer_read = 0.0;
  double e_logic = 0.0;       // MAC / comparator slice per cycle

  lim::FlowReport timing;     // flow report of the reference slice
};

/// Builds the LiM CAM-SpGEMM chip model (32 horizontal CAMs + vertical
/// CAM + scratchpads + MAC, fed by on-chip A/B buffers).
ChipModel build_lim_chip(const tech::Process& process,
                         const tech::StdCellLib& cells);

/// Builds the conventional heap/FIFO chip model.
ChipModel build_baseline_chip(const tech::Process& process,
                              const tech::StdCellLib& cells);

struct BenchmarkResult {
  CoreStats stats;
  double seconds = 0.0;
  double joules = 0.0;
};

/// Runs C = A * A on the chip (cycle simulation x chip clock/power) and
/// returns latency/energy. `product` receives C when non-null.
BenchmarkResult run_benchmark(const ChipModel& chip, bool is_lim,
                              const spgemm::SparseMatrix& a,
                              const CoreConfig& config,
                              spgemm::SparseMatrix* product = nullptr);

}  // namespace limsynth::arch
