// Engine-independent switching-activity record — the .saif substitute.
//
// Both simulation engines produce one: the two-phase settle simulator
// reports functional toggles only (a zero-delay fixpoint cannot see
// hazards, so glitch_toggles stays zero), while the event-driven engine
// (evsim) splits every net's transitions into functional toggles and
// hazard (glitch) toggles. Power analysis consumes the record without
// caring which engine made it, which is how glitch energy lands in the
// power report as its own component.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "netlist/netlist.hpp"

namespace limsynth::netlist {

class Simulator;

struct Activity {
  std::uint64_t cycles = 0;
  /// Per-net transition counts over the whole run (both edges counted).
  std::vector<std::uint64_t> toggles;
  /// Per-net hazard transitions: toggles beyond the one functional change
  /// per cycle. Always <= toggles[net]; zero from the settle engine.
  std::vector<std::uint64_t> glitch_toggles;
  /// Cycles in which each macro instance reported an access.
  std::map<InstId, std::uint64_t> macro_accesses;

  /// Toggle rate per cycle (both edges), as Simulator::activity.
  double rate(NetId net) const {
    if (cycles == 0) return 0.0;
    return static_cast<double>(toggles[static_cast<std::size_t>(net)]) /
           static_cast<double>(cycles);
  }
  /// Hazard-transition rate per cycle.
  double glitch_rate(NetId net) const {
    if (cycles == 0) return 0.0;
    return static_cast<double>(
               glitch_toggles[static_cast<std::size_t>(net)]) /
           static_cast<double>(cycles);
  }
  std::uint64_t macro_access_count(InstId inst) const {
    const auto it = macro_accesses.find(inst);
    return it == macro_accesses.end() ? 0 : it->second;
  }

  /// Snapshot of a settle-based simulation run (glitch_toggles all zero).
  static Activity from_simulator(const Simulator& sim);
};

}  // namespace limsynth::netlist
