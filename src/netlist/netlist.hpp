// Gate-level netlist IR — the "gate-level netlist" stage of the paper's
// flow, where memory bricks appear as macro instances next to standard
// cells and all of it is handed to physical synthesis together.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"

namespace limsynth::netlist {

using NetId = int;
using InstId = int;

inline constexpr NetId kNoNet = -1;

struct Connection {
  std::string pin;  // pin name on the cell (e.g. "A", "CK", "DWL[3]")
  NetId net = kNoNet;
};

struct Instance {
  std::string name;
  std::string cell;  // LibCell name in the design's library
  std::vector<Connection> conns;

  const NetId* find_pin(const std::string& pin) const {
    for (const auto& c : conns)
      if (c.pin == pin) return &c.net;
    return nullptr;
  }
};

struct Net {
  std::string name;
};

enum class PortDir { kInput, kOutput };

struct Port {
  std::string name;
  PortDir dir = PortDir::kInput;
  NetId net = kNoNet;
};

/// Flat single-clock-domain netlist. Instances reference library cells by
/// name; bus pins use "NAME[i]" pin names against the library's bus pin
/// model (see liberty::LibCell).
class Netlist {
 public:
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  NetId add_net(const std::string& name);
  /// Auto-named internal net (n<k>).
  NetId make_net();
  /// Bus of nets named base[0..width).
  std::vector<NetId> make_bus(const std::string& base, int width);

  InstId add_instance(const std::string& name, const std::string& cell,
                      std::vector<Connection> conns);
  /// Removes an instance (marks dead; iteration skips it).
  void remove_instance(InstId inst);

  void add_port(const std::string& name, PortDir dir, NetId net);
  /// Designates the clock net (connected to all CK pins).
  void set_clock(NetId net) { clock_ = net; }
  NetId clock() const { return clock_; }

  const std::vector<Net>& nets() const { return nets_; }
  const std::vector<Port>& ports() const { return ports_; }
  std::size_t live_instance_count() const;

  const Instance& instance(InstId id) const;
  Instance& instance(InstId id);
  bool is_live(InstId id) const { return !dead_[static_cast<std::size_t>(id)]; }
  std::size_t instance_storage_size() const { return instances_.size(); }

  const std::string& net_name(NetId net) const;
  NetId find_net(const std::string& name) const;

  /// Connectivity index (rebuilt on demand after edits).
  struct PinRef {
    InstId inst;
    std::string pin;
  };
  /// Instance output pin driving the net, or nullopt semantics via
  /// inst < 0 when driven by a primary input (or floating).
  PinRef driver_of(NetId net) const;
  const std::vector<PinRef>& sinks_of(NetId net) const;
  bool is_primary_input(NetId net) const;
  bool is_primary_output(NetId net) const;

  /// Declares which pins of a cell are outputs; by default the index uses
  /// the library-conventional names (Y, Q, DO, MATCH, GCK).
  static bool is_output_pin(const std::string& pin);

  /// Invalidate the connectivity index after manual edits.
  void touch() {
    index_valid_ = false;
    ++revision_;
  }

  /// Monotonic edit counter: bumped by every structural mutation (add/remove
  /// of nets, instances, ports, touch(), and mutable instance() access).
  /// BoundDesign captures it at bind time to detect stale bindings.
  std::uint64_t revision() const { return revision_; }

  /// Pre-sizes the net storage and name index for `nets` nets.
  void reserve_nets(std::size_t nets) {
    nets_.reserve(nets);
    net_index_.reserve(nets);
  }

 private:
  void rebuild_index() const;

  std::string name_;
  std::vector<Net> nets_;
  std::vector<Instance> instances_;
  std::vector<bool> dead_;
  std::vector<Port> ports_;
  NetId clock_ = kNoNet;
  std::unordered_map<std::string, NetId> net_index_;
  int auto_net_counter_ = 0;
  std::uint64_t revision_ = 0;

  mutable bool index_valid_ = false;
  mutable std::vector<PinRef> drivers_;
  mutable std::vector<std::vector<PinRef>> sinks_;
};

}  // namespace limsynth::netlist
