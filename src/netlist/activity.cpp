#include "netlist/activity.hpp"

#include "netlist/sim.hpp"

namespace limsynth::netlist {

Activity Activity::from_simulator(const Simulator& sim) {
  Activity act;
  act.cycles = sim.cycles();
  const std::size_t n_nets = sim.netlist().nets().size();
  act.toggles.resize(n_nets);
  act.glitch_toggles.assign(n_nets, 0);
  for (std::size_t n = 0; n < n_nets; ++n)
    act.toggles[n] = sim.toggles(static_cast<NetId>(n));
  for (std::size_t i = 0; i < sim.netlist().instance_storage_size(); ++i) {
    const auto id = static_cast<InstId>(i);
    const std::uint64_t accesses = sim.macro_accesses(id);
    if (accesses > 0) act.macro_accesses[id] = accesses;
  }
  return act;
}

}  // namespace limsynth::netlist
