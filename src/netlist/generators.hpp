// Structural generators — the RTL elaboration step of the flow. The
// paper's smart memories are described in Verilog (Fig. 3); here the same
// structures (decoders, comparators, muxes, adders, registers, priority
// encoders) are built directly as gate instances, which the synthesis
// stage then sizes and cleans up.
//
// All generators instantiate X1 cells by conventional name ("NAND2_X1");
// gate sizing is the synthesis stage's job.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace limsynth::netlist {

/// Naming helper: generators prefix their instances so hierarchies stay
/// readable in reports ("dec0/and3").
class Builder {
 public:
  Builder(Netlist& nl, std::string prefix)
      : nl_(nl), prefix_(std::move(prefix)) {}

  Netlist& nl() { return nl_; }

  // --- leaf gates (return the output net) ---
  NetId inv(NetId a);
  NetId buf(NetId a);
  NetId nand2(NetId a, NetId b);
  NetId nor2(NetId a, NetId b);
  NetId and2(NetId a, NetId b);
  NetId or2(NetId a, NetId b);
  NetId xor2(NetId a, NetId b);
  NetId xnor2(NetId a, NetId b);
  NetId mux2(NetId a, NetId b, NetId sel);  // sel ? b : a
  NetId tie0();
  NetId tie1();

  // --- trees ---
  NetId and_tree(std::vector<NetId> xs);
  NetId or_tree(std::vector<NetId> xs);

  // --- blocks ---
  /// Full decoder: n address bits -> 2^n one-hot outputs. When `enable`
  /// is given it is folded into the high-half predecode, so a disabled
  /// decoder keeps its outputs (and most internal nodes) quiet — the
  /// bank-gating idiom of the paper's partitioned SRAMs.
  std::vector<NetId> decoder(const std::vector<NetId>& addr,
                             NetId enable = kNoNet);

  /// Equality comparator over two equal-width buses.
  NetId equal(const std::vector<NetId>& a, const std::vector<NetId>& b);

  /// Unsigned less-than comparator: out = (a < b). Ripple from the MSB.
  NetId less_than(const std::vector<NetId>& a, const std::vector<NetId>& b);

  /// Priority encoder: grants[i] = reqs[i] & !reqs[0..i-1]; also returns
  /// `any` (OR of all requests) through the out-param when non-null.
  std::vector<NetId> priority(const std::vector<NetId>& reqs,
                              NetId* any = nullptr);

  /// Ripple-carry adder; returns sum bits, plus carry-out via out-param.
  std::vector<NetId> add(const std::vector<NetId>& a,
                         const std::vector<NetId>& b, NetId cin,
                         NetId* cout = nullptr);

  /// Unsigned array multiplier: |a| x |b| -> |a|+|b| product bits.
  std::vector<NetId> multiply(const std::vector<NetId>& a,
                              const std::vector<NetId>& b);

  /// Register bank: q[i] <= d[i] at clk (with optional enable).
  std::vector<NetId> registers(const std::vector<NetId>& d, NetId clk,
                               NetId en = kNoNet);

  /// N-to-1 one-hot mux: out = OR(and(sel[i], in[i])).
  NetId onehot_mux(const std::vector<NetId>& sel,
                   const std::vector<NetId>& in);

  int instances_created() const { return counter_; }

 private:
  NetId unary(const char* cell, NetId a);
  NetId binary(const char* cell, NetId a, NetId b);
  std::string iname(const char* stem);
  struct FullAdd {
    NetId sum;
    NetId carry;
  };
  FullAdd full_adder(NetId a, NetId b, NetId c);

  Netlist& nl_;
  std::string prefix_;
  int counter_ = 0;
};

}  // namespace limsynth::netlist
