// Structural Verilog emission.
//
// The paper's flow describes smart memories in Verilog (Fig. 3) and hands
// gate-level netlists between tools. This writer emits the elaborated /
// synthesized netlist as structural Verilog-2001 so designs built with the
// generators can be inspected, diffed, or taken to an external flow; the
// reader parses the same subset back for round-tripping.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace limsynth::netlist {

/// Emits `nl` as a single structural module. Net names are sanitized to
/// Verilog identifiers (bus-index brackets become escaped identifiers).
void write_verilog(const Netlist& nl, std::ostream& os);
std::string to_verilog_string(const Netlist& nl);

/// Parses a module previously produced by write_verilog (writer subset
/// only: one module, primitive instances with named port connections).
/// Throws limsynth::Error on malformed input.
Netlist parse_verilog(const std::string& text);

}  // namespace limsynth::netlist
