// Bound (linked) design layer — the bind-once/query-fast split.
//
// Every analysis pass used to re-pay string resolution per instance per
// query: `lib.cell(inst.cell)` map lookups, `find_pin` linear scans, and
// `find_arc` string compares in STA's innermost loop. BoundDesign performs
// that resolution exactly once: each instance's cell name becomes a dense
// LibCellId, each connection's pin name an interned PinId plus a slot index
// into the cell's input/output pin models, and all timing arcs/constraints
// are laid out in per-cell slot-indexed tables. Consumers (sta, power,
// evsim annotate, netlist/sim, place) then run on integers and pointers
// only.
//
// A binding is a snapshot: it captures Netlist::revision() at construction
// and every accessor path starts from check_fresh(), which throws a typed
// Error(kStaleBinding) once the netlist has been edited. Rebinding after an
// edit is cheap and explicit; silently reading dead instances is not
// possible.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "liberty/library.hpp"
#include "netlist/netlist.hpp"

namespace limsynth::netlist {

class MacroModel;

/// Dense library-cell id: position of the cell in Library::cells().
using LibCellId = std::int32_t;
/// Interned pin-name id, unique per BoundDesign.
using PinId = std::int32_t;

inline constexpr LibCellId kNoCell = -1;
inline constexpr PinId kNoPin = -1;

/// Minimal contiguous const view (std::span substitute for C++17).
template <typename T>
class Span {
 public:
  Span() = default;
  Span(const T* data, std::size_t size) : data_(data), size_(size) {}
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  const T* data_ = nullptr;
  std::size_t size_ = 0;
};

/// One resolved connection: the pin string is gone, replaced by the
/// interned PinId (full name, e.g. "DI[3]") and the slot of its base name
/// in the cell's input or output pin-model list.
struct BoundConn {
  NetId net = kNoNet;
  PinId pin = kNoPin;
  /// Index into LibCell::inputs (is_output == false) or LibCell::outputs
  /// (is_output == true); -1 when the cell models no such pin (possible
  /// only for outputs — unmodeled inputs are rejected at bind time).
  std::int16_t slot = -1;
  bool is_output = false;
  /// The pin-model is the cell's clock input.
  bool is_clock = false;
  /// Input pin capacitance (F); 0 for outputs and unmodeled pins.
  double cap = 0.0;
};

/// Immutable bind of a Netlist against a Library. Const-shareable across
/// threads once constructed.
class BoundDesign {
 public:
  /// Resolves every instance and connection. Throws Error(kInvalidConfig)
  /// when an instance references a cell missing from `lib` or an input
  /// conn references a pin the cell does not model. Both `nl` and `lib`
  /// must outlive the binding.
  BoundDesign(const Netlist& nl, const liberty::Library& lib);

  const Netlist& netlist() const { return *nl_; }
  const liberty::Library& library() const { return *lib_; }

  /// Throws Error(kStaleBinding) when the netlist has been structurally
  /// edited (revision changed) since this binding was built. Analysis
  /// passes call it once on entry.
  void check_fresh() const;
  bool fresh() const { return nl_->revision() == bound_revision_; }

  // ------------------------------------------------------- instance views
  /// Instance storage size (dead slots included), as in the netlist.
  std::size_t instance_count() const { return inst_cell_.size(); }
  bool is_live(InstId id) const { return nl_->is_live(id); }
  std::size_t live_instance_count() const { return live_instances_; }

  LibCellId cell_id(InstId id) const {
    return inst_cell_[static_cast<std::size_t>(id)];
  }
  /// The library cell of an instance (dense array deref, no map lookup).
  const liberty::LibCell& cell(InstId id) const {
    return lib_->cells()[static_cast<std::size_t>(cell_id(id))];
  }
  /// Resolved connections of an instance, in netlist conn order.
  Span<BoundConn> conns(InstId id) const {
    const auto& r = inst_conn_range_[static_cast<std::size_t>(id)];
    return {conns_.data() + r.first, r.second - r.first};
  }
  /// Global conn index (into conn_at) of an instance's first connection.
  std::uint32_t conn_begin(InstId id) const {
    return inst_conn_range_[static_cast<std::size_t>(id)].first;
  }
  bool is_seq_or_macro(InstId id) const {
    const auto& c = cell(id);
    return c.sequential || c.is_macro;
  }

  // ------------------------------------------------------ per-cell views
  std::size_t cell_count() const { return lib_->cells().size(); }
  const liberty::LibCell& lib_cell(LibCellId cid) const {
    return lib_->cells()[static_cast<std::size_t>(cid)];
  }
  /// Live instances of a cell, grouped (SoA-friendly batch iteration).
  Span<InstId> instances_of(LibCellId cid) const;

  // ------------------------------------------------------- timing tables
  /// The in-slot -> out-slot timing arc, or nullptr (non-timing pin).
  const liberty::TimingArc* arc(LibCellId cid, int in_slot,
                                int out_slot) const {
    const CellTables& t = tables_[static_cast<std::size_t>(cid)];
    if (in_slot < 0 || out_slot < 0) return nullptr;
    return t.arcs[static_cast<std::size_t>(in_slot) * t.n_out +
                  static_cast<std::size_t>(out_slot)];
  }
  /// Clock -> out-slot arc of a sequential/macro cell, or nullptr.
  const liberty::TimingArc* clock_arc(LibCellId cid, int out_slot) const {
    if (out_slot < 0) return nullptr;
    return tables_[static_cast<std::size_t>(cid)]
        .clock_arcs[static_cast<std::size_t>(out_slot)];
  }
  /// Setup/hold constraint on an input slot, or nullptr.
  const liberty::Constraint* constraint(LibCellId cid, int in_slot) const {
    if (in_slot < 0) return nullptr;
    return tables_[static_cast<std::size_t>(cid)]
        .constraints[static_cast<std::size_t>(in_slot)];
  }
  /// Input slot of the cell's clock pin ("CK" by convention when the cell
  /// does not name one), or -1.
  int clock_slot(LibCellId cid) const {
    return tables_[static_cast<std::size_t>(cid)].clock_slot;
  }

  // ------------------------------------------- connectivity (index-only)
  struct SinkRef {
    InstId inst = -1;
    /// Global conn index of the sink pin; resolve with conn_at().
    std::uint32_t conn = 0;
  };
  Span<SinkRef> sinks(NetId net) const {
    const auto& r = net_sink_range_[static_cast<std::size_t>(net)];
    return {sink_refs_.data() + r.first, r.second - r.first};
  }
  /// The driving instance of a net, or -1 (primary input / floating).
  InstId driver_inst(NetId net) const {
    return net_driver_[static_cast<std::size_t>(net)].inst;
  }
  /// The driving conn, or nullptr when the net has no instance driver.
  const BoundConn* driver(NetId net) const {
    const SinkRef& d = net_driver_[static_cast<std::size_t>(net)];
    return d.inst < 0 ? nullptr : &conns_[d.conn];
  }
  const BoundConn& conn_at(std::uint32_t global) const {
    return conns_[global];
  }
  /// Total sink pin capacitance per net, precomputed at bind time.
  double sink_cap(NetId net) const {
    return net_sink_cap_[static_cast<std::size_t>(net)];
  }

  // ------------------------------------------------------- pin interning
  /// Id of a full pin name, or kNoPin when no conn in the design uses it.
  PinId pin_id(const std::string& name) const;
  const std::string& pin_name(PinId pin) const {
    return pin_names_[static_cast<std::size_t>(pin)];
  }
  std::size_t pin_count() const { return pin_names_.size(); }
  /// Net on `inst` connected through pin id `pin` (binary search over the
  /// instance's sorted pin table), or kNoNet.
  NetId pin_net(InstId inst, PinId pin) const;
  NetId pin_net(InstId inst, const std::string& pin) const {
    return pin_net(inst, pin_id(pin));
  }

 private:
  struct CellTables {
    std::size_t n_in = 0;
    std::size_t n_out = 0;
    /// Row-major [in_slot][out_slot] arc pointers.
    std::vector<const liberty::TimingArc*> arcs;
    /// Clock -> output arcs, indexed by out_slot.
    std::vector<const liberty::TimingArc*> clock_arcs;
    /// Constraints indexed by in_slot.
    std::vector<const liberty::Constraint*> constraints;
    int clock_slot = -1;
  };

  using Range = std::pair<std::uint32_t, std::uint32_t>;  // [first, second)

  const CellTables& build_tables(LibCellId cid);

  const Netlist* nl_;
  const liberty::Library* lib_;
  std::uint64_t bound_revision_ = 0;
  std::size_t live_instances_ = 0;

  std::vector<LibCellId> inst_cell_;
  std::vector<Range> inst_conn_range_;
  std::vector<BoundConn> conns_;

  std::vector<CellTables> tables_;
  std::vector<Range> cell_inst_range_;
  std::vector<InstId> cell_insts_;

  std::vector<SinkRef> net_driver_;
  std::vector<Range> net_sink_range_;
  std::vector<SinkRef> sink_refs_;
  std::vector<double> net_sink_cap_;

  std::unordered_map<std::string, PinId> pin_ids_;
  std::vector<std::string> pin_names_;
  /// Per instance (same ranges as inst_conn_range_): (PinId, NetId) sorted
  /// by PinId for binary-search pin_net.
  std::vector<std::pair<PinId, NetId>> inst_pin_sorted_;
};

/// Shared macro-model binding table — the one place where behavioral
/// models attach to macro instances. Both simulation engines
/// (netlist::Simulator and evsim::EventSimulator) own one of these instead
/// of each keeping a private std::map, so attach semantics, deterministic
/// iteration order, and access accounting are defined once.
class MacroBindings {
 public:
  void attach(InstId inst, std::shared_ptr<MacroModel> model) {
    models_[inst] = std::move(model);
  }
  MacroModel* model(InstId inst) const {
    const auto it = models_.find(inst);
    return it == models_.end() ? nullptr : it->second.get();
  }
  bool attached(InstId inst) const { return models_.count(inst) != 0; }
  /// Deterministic (InstId-ordered) iteration for clock-edge dispatch.
  const std::map<InstId, std::shared_ptr<MacroModel>>& models() const {
    return models_;
  }
  void note_access(InstId inst) { ++access_counts_[inst]; }
  std::uint64_t accesses(InstId inst) const {
    const auto it = access_counts_.find(inst);
    return it == access_counts_.end() ? 0 : it->second;
  }
  /// All access counts (the Activity snapshot format).
  const std::map<InstId, std::uint64_t>& access_counts() const {
    return access_counts_;
  }

  /// Resolves a macro-port pin name to its net through a per-instance
  /// cache (built on first touch), so repeated model calls cost one hash
  /// lookup instead of a linear pin scan. Returns kNoNet when the
  /// instance has no such pin.
  NetId pin_net(const Netlist& nl, InstId inst, const std::string& pin) const;

 private:
  std::map<InstId, std::shared_ptr<MacroModel>> models_;
  std::map<InstId, std::uint64_t> access_counts_;
  mutable std::map<InstId, std::unordered_map<std::string, NetId>> pin_cache_;
};

}  // namespace limsynth::netlist
