// Combinational levelization of a bound design.
//
// Orders the live combinational instances of a BoundDesign topologically
// and groups them by logic level: level 0 gates read only level sources
// (primary inputs, flop Q outputs, macro outputs, tie cells' nothing),
// level L gates read at least one level-(L-1) output and nothing deeper.
// A levelized netlist needs exactly one evaluation pass per level to
// settle — the precondition for the branch-free bit-plane evaluator in
// src/bitsim/ — instead of the scalar engine's bounded fixpoint.
//
// Levelization is a pure function of connectivity; it is computed once
// per binding and shared const across threads like the BoundDesign it
// indexes into.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/bound.hpp"

namespace limsynth::netlist {

struct Levelization {
  /// Live combinational instances in topological order, grouped by level.
  std::vector<InstId> order;
  /// Offsets into `order`, one per level plus a terminator:
  /// level l spans [level_begin[l], level_begin[l + 1]).
  std::vector<std::uint32_t> level_begin;

  std::size_t levels() const {
    return level_begin.empty() ? 0 : level_begin.size() - 1;
  }
  Span<InstId> level(std::size_t l) const {
    return {order.data() + level_begin[l],
            level_begin[l + 1] - level_begin[l]};
  }
};

/// Topologically levelizes the bound design's combinational instances
/// (sequential cells and macros are level sources, not members). Order is
/// deterministic: ascending InstId within each level. Throws
/// Error(kNonConvergence) naming sample instances when a combinational
/// cycle makes levelization impossible.
Levelization levelize(const BoundDesign& bound);

}  // namespace limsynth::netlist
