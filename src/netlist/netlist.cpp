#include "netlist/netlist.hpp"

#include <cstdio>

namespace limsynth::netlist {

NetId Netlist::add_net(const std::string& name) {
  LIMS_CHECK_MSG(net_index_.find(name) == net_index_.end(),
                 "duplicate net " << name);
  const NetId id = static_cast<NetId>(nets_.size());
  nets_.push_back(Net{name});
  net_index_.emplace(nets_.back().name, id);
  index_valid_ = false;
  ++revision_;
  return id;
}

NetId Netlist::make_net() {
  // Build "n<k>" once into a preallocated buffer instead of concatenating
  // temporaries per call.
  char buf[24];
  const int len = std::snprintf(buf, sizeof buf, "n%d", auto_net_counter_++);
  return add_net(std::string(buf, static_cast<std::size_t>(len)));
}

std::vector<NetId> Netlist::make_bus(const std::string& base, int width) {
  LIMS_CHECK(width >= 1);
  std::vector<NetId> bus;
  bus.reserve(static_cast<std::size_t>(width));
  net_index_.reserve(net_index_.size() + static_cast<std::size_t>(width));
  // Reuse one name buffer: keep "base[" and rewrite only the index suffix.
  std::string name = base;
  name += '[';
  const std::size_t stem = name.size();
  for (int i = 0; i < width; ++i) {
    name.resize(stem);
    name += std::to_string(i);
    name += ']';
    bus.push_back(add_net(name));
  }
  return bus;
}

InstId Netlist::add_instance(const std::string& name, const std::string& cell,
                             std::vector<Connection> conns) {
  for (const auto& c : conns)
    LIMS_CHECK_MSG(c.net >= 0 && c.net < static_cast<NetId>(nets_.size()),
                   "instance " << name << " pin " << c.pin << " unconnected");
  const InstId id = static_cast<InstId>(instances_.size());
  instances_.push_back(Instance{name, cell, std::move(conns)});
  dead_.push_back(false);
  index_valid_ = false;
  ++revision_;
  return id;
}

void Netlist::remove_instance(InstId inst) {
  LIMS_CHECK(inst >= 0 && inst < static_cast<InstId>(instances_.size()));
  dead_[static_cast<std::size_t>(inst)] = true;
  index_valid_ = false;
  ++revision_;
}

void Netlist::add_port(const std::string& name, PortDir dir, NetId net) {
  ports_.push_back(Port{name, dir, net});
  index_valid_ = false;
  ++revision_;
}

std::size_t Netlist::live_instance_count() const {
  std::size_t n = 0;
  for (bool d : dead_)
    if (!d) ++n;
  return n;
}

const Instance& Netlist::instance(InstId id) const {
  LIMS_CHECK(id >= 0 && id < static_cast<InstId>(instances_.size()));
  return instances_[static_cast<std::size_t>(id)];
}

Instance& Netlist::instance(InstId id) {
  LIMS_CHECK(id >= 0 && id < static_cast<InstId>(instances_.size()));
  // Handing out a mutable reference may change connectivity, so both the
  // lazy index and any outstanding BoundDesign become suspect.
  index_valid_ = false;
  ++revision_;
  return instances_[static_cast<std::size_t>(id)];
}

const std::string& Netlist::net_name(NetId net) const {
  LIMS_CHECK(net >= 0 && net < static_cast<NetId>(nets_.size()));
  return nets_[static_cast<std::size_t>(net)].name;
}

NetId Netlist::find_net(const std::string& name) const {
  const auto it = net_index_.find(name);
  return it == net_index_.end() ? kNoNet : it->second;
}

bool Netlist::is_output_pin(const std::string& pin) {
  // Conventional output names, including indexed bus pins like DO[3].
  const auto base_len = pin.find('[');
  const std::string base =
      base_len == std::string::npos ? pin : pin.substr(0, base_len);
  return base == "Y" || base == "Q" || base == "DO" || base == "MATCH" ||
         base == "GCK";
}

void Netlist::rebuild_index() const {
  drivers_.assign(nets_.size(), PinRef{-1, ""});
  sinks_.assign(nets_.size(), {});
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    if (dead_[i]) continue;
    for (const auto& c : instances_[i].conns) {
      const auto net = static_cast<std::size_t>(c.net);
      if (is_output_pin(c.pin)) {
        drivers_[net] = PinRef{static_cast<InstId>(i), c.pin};
      } else {
        sinks_[net].push_back(PinRef{static_cast<InstId>(i), c.pin});
      }
    }
  }
  index_valid_ = true;
}

Netlist::PinRef Netlist::driver_of(NetId net) const {
  if (!index_valid_) rebuild_index();
  return drivers_[static_cast<std::size_t>(net)];
}

const std::vector<Netlist::PinRef>& Netlist::sinks_of(NetId net) const {
  if (!index_valid_) rebuild_index();
  return sinks_[static_cast<std::size_t>(net)];
}

bool Netlist::is_primary_input(NetId net) const {
  for (const auto& p : ports_)
    if (p.net == net && p.dir == PortDir::kInput) return true;
  return false;
}

bool Netlist::is_primary_output(NetId net) const {
  for (const auto& p : ports_)
    if (p.net == net && p.dir == PortDir::kOutput) return true;
  return false;
}

}  // namespace limsynth::netlist
