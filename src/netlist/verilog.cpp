#include "netlist/verilog.hpp"

#include <map>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace limsynth::netlist {

namespace {

/// Verilog-legal identifier for a net/instance name. Bus-style names like
/// "raddr[3]" become "raddr_3_"; other specials become '_'.
std::string sanitize(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 2);
  for (char ch : name) {
    if (std::isalnum(static_cast<unsigned char>(ch)) || ch == '_') {
      out += ch;
    } else {
      out += '_';
    }
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0])))
    out = "n_" + out;
  return out;
}

}  // namespace

void write_verilog(const Netlist& nl, std::ostream& os) {
  // Unique sanitized net names.
  std::vector<std::string> net_name(nl.nets().size());
  std::map<std::string, int> used;
  for (std::size_t i = 0; i < nl.nets().size(); ++i) {
    std::string base = sanitize(nl.nets()[i].name);
    const int count = used[base]++;
    if (count > 0) base += "_dup" + std::to_string(count);
    net_name[i] = base;
  }

  os << "// limsynth structural netlist\n";
  os << "module " << sanitize(nl.name()) << " (";
  bool first = true;
  for (const auto& p : nl.ports()) {
    if (!first) os << ", ";
    first = false;
    os << sanitize(p.name);
  }
  os << ");\n";

  for (const auto& p : nl.ports()) {
    os << "  " << (p.dir == PortDir::kInput ? "input" : "output") << ' '
       << sanitize(p.name) << ";\n";
  }
  // Port-to-net aliases and internal wires.
  std::vector<bool> is_port_net(nl.nets().size(), false);
  for (const auto& p : nl.ports())
    is_port_net[static_cast<std::size_t>(p.net)] = true;
  for (std::size_t i = 0; i < nl.nets().size(); ++i) {
    if (!is_port_net[i]) os << "  wire " << net_name[i] << ";\n";
  }
  for (const auto& p : nl.ports()) {
    const auto n = static_cast<std::size_t>(p.net);
    if (p.dir == PortDir::kInput) {
      os << "  wire " << net_name[n] << ";\n";
      os << "  assign " << net_name[n] << " = " << sanitize(p.name) << ";\n";
    } else {
      os << "  assign " << sanitize(p.name) << " = " << net_name[n] << ";\n";
    }
  }

  std::map<std::string, int> inst_used;
  for (std::size_t i = 0; i < nl.instance_storage_size(); ++i) {
    const auto id = static_cast<InstId>(i);
    if (!nl.is_live(id)) continue;
    const Instance& inst = nl.instance(id);
    std::string iname = sanitize(inst.name);
    const int count = inst_used[iname]++;
    if (count > 0) iname += "_dup" + std::to_string(count);
    os << "  " << sanitize(inst.cell) << ' ' << iname << " (";
    for (std::size_t c = 0; c < inst.conns.size(); ++c) {
      if (c) os << ", ";
      os << '.' << sanitize(inst.conns[c].pin) << '('
         << net_name[static_cast<std::size_t>(inst.conns[c].net)] << ')';
    }
    os << ");\n";
  }
  os << "endmodule\n";
}

std::string to_verilog_string(const Netlist& nl) {
  std::ostringstream os;
  write_verilog(nl, os);
  return os.str();
}

// ------------------------------------------------------------------ parser

namespace {

class VParser {
 public:
  explicit VParser(const std::string& text) : text_(text) {}

  Netlist parse() {
    expect_word("module");
    Netlist nl(parse_ident());
    expect_char('(');
    std::vector<std::string> port_order;
    if (peek() != ')') {
      for (;;) {
        port_order.push_back(parse_ident());
        if (peek() == ')') break;
        expect_char(',');
      }
    }
    expect_char(')');
    expect_char(';');

    std::map<std::string, PortDir> port_dir;
    std::map<std::string, NetId> nets;
    std::map<std::string, std::string> output_alias;  // port -> net

    auto net_of = [&](const std::string& name) {
      const auto it = nets.find(name);
      if (it != nets.end()) return it->second;
      const NetId id = nl.add_net(name);
      nets[name] = id;
      return id;
    };

    for (;;) {
      const std::string word = parse_word();
      if (word == "endmodule") break;
      if (word == "input" || word == "output") {
        port_dir[parse_ident()] = word == "input" ? PortDir::kInput
                                                  : PortDir::kOutput;
        expect_char(';');
      } else if (word == "wire") {
        (void)net_of(parse_ident());
        expect_char(';');
      } else if (word == "assign") {
        const std::string lhs = parse_ident();
        expect_char('=');
        const std::string rhs = parse_ident();
        expect_char(';');
        // input ports: net = port; output ports: port = net.
        if (port_dir.count(lhs)) {
          output_alias[lhs] = rhs;
        } else {
          // lhs is the internal net fed by input port rhs; bind them.
          nl.add_port(rhs, PortDir::kInput, net_of(lhs));
          if (rhs == "clk") nl.set_clock(net_of(lhs));
          port_dir.erase(rhs);
        }
      } else {
        // Cell instance: CELL name ( .PIN(net), ... );
        const std::string cell = word;
        const std::string iname = parse_ident();
        expect_char('(');
        std::vector<Connection> conns;
        if (peek() != ')') {
          for (;;) {
            expect_char('.');
            const std::string pin = parse_ident();
            expect_char('(');
            conns.push_back({pin, net_of(parse_ident())});
            expect_char(')');
            if (peek() == ')') break;
            expect_char(',');
          }
        }
        expect_char(')');
        expect_char(';');
        nl.add_instance(iname, cell, std::move(conns));
      }
    }
    for (const auto& [port, net] : output_alias)
      nl.add_port(port, PortDir::kOutput, net_of(net));
    return nl;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      if (std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      } else if (text_.compare(pos_, 2, "//") == 0) {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }
  char peek() {
    skip_ws();
    LIMS_CHECK_MSG(pos_ < text_.size(), "verilog parse: unexpected EOF");
    return text_[pos_];
  }
  void expect_char(char ch) {
    LIMS_CHECK_MSG(peek() == ch, "verilog parse: expected '"
                                     << ch << "', found '" << peek() << "'");
    ++pos_;
  }
  std::string parse_word() {
    skip_ws();
    std::string out;
    while (pos_ < text_.size()) {
      const char ch = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(ch)) || ch == '_') {
        out += ch;
        ++pos_;
      } else {
        break;
      }
    }
    LIMS_CHECK_MSG(!out.empty(), "verilog parse: expected identifier");
    return out;
  }
  std::string parse_ident() { return parse_word(); }
  void expect_word(const std::string& w) {
    LIMS_CHECK_MSG(parse_word() == w, "verilog parse: expected " << w);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Netlist parse_verilog(const std::string& text) { return VParser(text).parse(); }

}  // namespace limsynth::netlist
