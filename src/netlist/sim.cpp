#include "netlist/sim.hpp"

#include <algorithm>
#include <sstream>

#include "util/watchdog.hpp"

namespace limsynth::netlist {

namespace {

// Input pin order shared with evsim::annotate and eval_gate.
constexpr const char* kInputPins[4] = {"A", "B", "C", "D"};

}  // namespace

std::string cell_stem(const std::string& cell) {
  const auto pos = cell.rfind("_X");
  return pos == std::string::npos ? cell : cell.substr(0, pos);
}

std::uint64_t MacroModel::peek(int row) const {
  LIMS_FAIL(ErrorCode::kInvalidConfig,
            "macro model exposes no inspectable state (peek row " << row
                                                                  << ")");
}

void MacroModel::poke(int row, std::uint64_t value) {
  (void)value;
  LIMS_FAIL(ErrorCode::kInvalidConfig,
            "macro model exposes no inspectable state (poke row " << row
                                                                  << ")");
}

Simulator::Simulator(const Netlist& nl, const tech::StdCellLib& cells)
    : nl_(nl) {
  values_.assign(nl.nets().size(), false);
  toggle_counts_.assign(nl.nets().size(), 0);
  ff_state_.assign(nl.instance_storage_size(), false);

  // Bind once: resolve each live instance's cell function and pin nets so
  // the settle/clock hot loops never touch a string again. Unknown cells
  // (macros awaiting attach) and missing pins are recorded, not thrown —
  // the error surfaces at first evaluation, preserving the lazy contract.
  std::unordered_map<std::string, tech::CellFunc> func_by_stem;
  func_by_stem.reserve(cells.cells().size());
  for (const auto& c : cells.cells())
    func_by_stem[cell_stem(c.name)] = c.func;

  gates_.assign(nl.instance_storage_size(), GateBinding{});
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const auto id = static_cast<InstId>(i);
    if (!nl.is_live(id)) continue;
    const Instance& inst = nl.instance(id);
    const auto fit = func_by_stem.find(cell_stem(inst.cell));
    if (fit == func_by_stem.end()) continue;  // known=false: macro or error
    GateBinding& gb = gates_[i];
    gb.known = true;
    gb.func = fit->second;
    gb.sequential = tech::cell_func_sequential(gb.func);
    if (gb.sequential) {
      if (const NetId* d = inst.find_pin("D")) gb.d = *d;
      if (const NetId* q = inst.find_pin("Q")) gb.q = *q;
      if (const NetId* en = inst.find_pin("EN")) gb.en = *en;
      continue;
    }
    gb.nin = tech::cell_func_inputs(gb.func);
    for (int k = 0; k < gb.nin; ++k) {
      if (const NetId* in = inst.find_pin(kInputPins[k])) {
        gb.in[k] = *in;
      } else if (gb.missing_input < 0) {
        gb.missing_input = static_cast<std::int8_t>(k);
      }
    }
    if (const NetId* out = inst.find_pin("Y")) gb.out = *out;
  }
}

void Simulator::attach(InstId inst, std::shared_ptr<MacroModel> model) {
  macros_.attach(inst, std::move(model));
}

void Simulator::set_input(NetId net, bool value) {
  set_net(net, value, true);
}

void Simulator::set_bus(const std::vector<NetId>& bus, std::uint64_t value) {
  LIMS_CHECK(bus.size() <= 64);
  for (std::size_t i = 0; i < bus.size(); ++i)
    set_net(bus[i], (value >> i) & 1, true);
}

void Simulator::force_net(NetId net, bool value) {
  const auto n = static_cast<std::size_t>(net);
  LIMS_CHECK(n < values_.size());
  forced_[net] = value;
  values_[n] = value;
}

void Simulator::release_net(NetId net) { forced_.erase(net); }

void Simulator::set_net(NetId net, bool value, bool count_toggle) {
  const auto n = static_cast<std::size_t>(net);
  LIMS_CHECK(n < values_.size());
  if (!forced_.empty()) {
    const auto it = forced_.find(net);
    if (it != forced_.end()) value = it->second;  // stuck net wins
  }
  if (values_[n] != value) {
    values_[n] = value;
    if (count_toggle) ++toggle_counts_[n];
  }
}

bool Simulator::value(NetId net) const {
  return values_[static_cast<std::size_t>(net)];
}

std::uint64_t Simulator::bus_value(const std::vector<NetId>& bus) const {
  LIMS_CHECK(bus.size() <= 64);
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bus.size(); ++i)
    if (value(bus[i])) v |= (std::uint64_t{1} << i);
  return v;
}

bool Simulator::pin_value(InstId inst, const std::string& pin) const {
  const NetId net = macros_.pin_net(nl_, inst, pin);
  LIMS_CHECK_MSG(net != kNoNet, "instance " << nl_.instance(inst).name
                                            << " has no pin " << pin);
  return value(net);
}

void Simulator::drive_pin(InstId inst, const std::string& pin, bool v) {
  const NetId net = macros_.pin_net(nl_, inst, pin);
  LIMS_CHECK_MSG(net != kNoNet, "instance " << nl_.instance(inst).name
                                            << " has no pin " << pin);
  set_net(net, v, true);
}

bool Simulator::eval_gate(InstId id, const GateBinding& gb) const {
  LIMS_CHECK_MSG(gb.missing_input < 0,
                 "cell " << nl_.instance(id).name << " missing pin "
                         << kInputPins[static_cast<int>(gb.missing_input)]);
  auto in = [&](int k) { return values_[static_cast<std::size_t>(gb.in[k])]; };
  using tech::CellFunc;
  switch (gb.func) {
    case CellFunc::kInv: return !in(0);
    case CellFunc::kBuf: return in(0);
    case CellFunc::kNand2: return !(in(0) && in(1));
    case CellFunc::kNand3: return !(in(0) && in(1) && in(2));
    case CellFunc::kNand4: return !(in(0) && in(1) && in(2) && in(3));
    case CellFunc::kNor2: return !(in(0) || in(1));
    case CellFunc::kNor3: return !(in(0) || in(1) || in(2));
    case CellFunc::kAnd2: return in(0) && in(1);
    case CellFunc::kOr2: return in(0) || in(1);
    case CellFunc::kXor2: return in(0) != in(1);
    case CellFunc::kXnor2: return in(0) == in(1);
    case CellFunc::kMux2: return in(2) ? in(1) : in(0);
    case CellFunc::kAoi21: return !((in(0) && in(1)) || in(2));
    case CellFunc::kOai21: return !((in(0) || in(1)) && in(2));
    case CellFunc::kTie0: return false;
    case CellFunc::kTie1: return true;
    default:
      LIMS_UNREACHABLE("sequential cell in combinational eval");
  }
}

void Simulator::settle() {
  const std::size_t n_inst = nl_.instance_storage_size();
  // Bounded fixpoint iteration: each pass evaluates every combinational
  // gate; netlists are acyclic so this converges within depth passes.
  const std::size_t max_passes =
      budget_.max_passes > 0 ? budget_.max_passes : n_inst + 2;
  const Watchdog watchdog("netlist settle", budget_.wall_seconds);
  // Nets that changed during the most recent pass: on non-convergence
  // these are the oscillating nets, and naming them turns "combinational
  // loop?" into an actionable diagnostic.
  std::vector<NetId> last_changed;
  for (std::size_t pass = 0; pass < max_passes; ++pass) {
    watchdog.check();
    last_changed.clear();
    bool changed = false;
    for (std::size_t i = 0; i < n_inst; ++i) {
      const auto id = static_cast<InstId>(i);
      if (!nl_.is_live(id)) continue;
      if (macros_.attached(id)) continue;
      const GateBinding& gb = gates_[i];
      LIMS_CHECK_MSG(gb.known, "unknown cell " << nl_.instance(id).cell);
      if (gb.sequential) continue;
      bool v = eval_gate(id, gb);
      LIMS_CHECK_MSG(gb.out != kNoNet,
                     "cell " << nl_.instance(id).name << " missing pin Y");
      if (!forced_.empty()) {
        // A stuck net never follows its driver; compare against the forced
        // value so the fixpoint still converges.
        const auto it = forced_.find(gb.out);
        if (it != forced_.end()) v = it->second;
      }
      if (value(gb.out) != v) {
        set_net(gb.out, v, true);
        changed = true;
        last_changed.push_back(gb.out);
      }
    }
    if (!changed) return;
  }
  std::ostringstream os;
  os << "netlist simulation did not settle after " << max_passes
     << " passes (combinational loop?); still-oscillating nets:";
  const std::size_t show = std::min<std::size_t>(last_changed.size(), 10);
  for (std::size_t i = 0; i < show; ++i)
    os << ' ' << nl_.net_name(last_changed[i]);
  if (last_changed.size() > show)
    os << " (+" << last_changed.size() - show << " more)";
  throw Error(ErrorCode::kNonConvergence, os.str());
}

void Simulator::clock_edge() {
  ++cycles_;
  // Sample all flop D inputs first (old values), then commit.
  struct Capture {
    InstId inst;
    bool d;
  };
  std::vector<Capture> captures;
  const std::size_t n_inst = nl_.instance_storage_size();
  for (std::size_t i = 0; i < n_inst; ++i) {
    const auto id = static_cast<InstId>(i);
    if (!nl_.is_live(id) || macros_.attached(id)) continue;
    const GateBinding& gb = gates_[i];
    if (!gb.known || !gb.sequential) continue;
    bool d = ff_state_[i];
    if (gb.func == tech::CellFunc::kDff) {
      LIMS_CHECK_MSG(gb.d != kNoNet,
                     "flop " << nl_.instance(id).name << " missing pin D");
      d = values_[static_cast<std::size_t>(gb.d)];
    } else if (gb.func == tech::CellFunc::kDffEn) {
      LIMS_CHECK_MSG(gb.d != kNoNet && gb.en != kNoNet,
                     "DFFE " << nl_.instance(id).name << " missing D/EN pins");
      if (values_[static_cast<std::size_t>(gb.en)])
        d = values_[static_cast<std::size_t>(gb.d)];
    }
    captures.push_back({id, d});
  }
  // Macro models fire on pre-edge pin values (like the flop D sampling
  // above), then flop outputs commit, then logic resettles.
  for (const auto& [inst, model] : macros_.models())
    model->on_clock(*this, inst);
  for (const auto& c : captures) {
    ff_state_[static_cast<std::size_t>(c.inst)] = c.d;
    const GateBinding& gb = gates_[static_cast<std::size_t>(c.inst)];
    LIMS_CHECK_MSG(gb.q != kNoNet,
                   "flop " << nl_.instance(c.inst).name << " missing pin Q");
    set_net(gb.q, c.d, true);
  }
  settle();
}

std::uint64_t Simulator::toggles(NetId net) const {
  return toggle_counts_[static_cast<std::size_t>(net)];
}

double Simulator::activity(NetId net) const {
  if (cycles_ == 0) return 0.0;
  return static_cast<double>(toggles(net)) / static_cast<double>(cycles_);
}

std::uint64_t Simulator::macro_accesses(InstId inst) const {
  return macros_.accesses(inst);
}

void Simulator::note_macro_access(InstId inst) {
  macros_.note_access(inst);
}

}  // namespace limsynth::netlist
