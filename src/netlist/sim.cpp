#include "netlist/sim.hpp"

#include <algorithm>
#include <sstream>

#include "util/watchdog.hpp"

namespace limsynth::netlist {

std::string cell_stem(const std::string& cell) {
  const auto pos = cell.rfind("_X");
  return pos == std::string::npos ? cell : cell.substr(0, pos);
}

std::uint64_t MacroModel::peek(int row) const {
  LIMS_FAIL(ErrorCode::kInvalidConfig,
            "macro model exposes no inspectable state (peek row " << row
                                                                  << ")");
}

void MacroModel::poke(int row, std::uint64_t value) {
  (void)value;
  LIMS_FAIL(ErrorCode::kInvalidConfig,
            "macro model exposes no inspectable state (poke row " << row
                                                                  << ")");
}

Simulator::Simulator(const Netlist& nl, const tech::StdCellLib& cells)
    : nl_(nl) {
  for (const auto& c : cells.cells())
    func_by_cell_[cell_stem(c.name)] = c.func;
  values_.assign(nl.nets().size(), false);
  toggle_counts_.assign(nl.nets().size(), 0);
  ff_state_.assign(nl.instance_storage_size(), false);
}

void Simulator::attach(InstId inst, std::shared_ptr<MacroModel> model) {
  macros_[inst] = std::move(model);
}

void Simulator::set_input(NetId net, bool value) {
  set_net(net, value, true);
}

void Simulator::set_bus(const std::vector<NetId>& bus, std::uint64_t value) {
  LIMS_CHECK(bus.size() <= 64);
  for (std::size_t i = 0; i < bus.size(); ++i)
    set_net(bus[i], (value >> i) & 1, true);
}

void Simulator::force_net(NetId net, bool value) {
  const auto n = static_cast<std::size_t>(net);
  LIMS_CHECK(n < values_.size());
  forced_[net] = value;
  values_[n] = value;
}

void Simulator::release_net(NetId net) { forced_.erase(net); }

void Simulator::set_net(NetId net, bool value, bool count_toggle) {
  const auto n = static_cast<std::size_t>(net);
  LIMS_CHECK(n < values_.size());
  if (!forced_.empty()) {
    const auto it = forced_.find(net);
    if (it != forced_.end()) value = it->second;  // stuck net wins
  }
  if (values_[n] != value) {
    values_[n] = value;
    if (count_toggle) ++toggle_counts_[n];
  }
}

bool Simulator::value(NetId net) const {
  return values_[static_cast<std::size_t>(net)];
}

std::uint64_t Simulator::bus_value(const std::vector<NetId>& bus) const {
  LIMS_CHECK(bus.size() <= 64);
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bus.size(); ++i)
    if (value(bus[i])) v |= (std::uint64_t{1} << i);
  return v;
}

bool Simulator::pin_value(InstId inst, const std::string& pin) const {
  const NetId* net = nl_.instance(inst).find_pin(pin);
  LIMS_CHECK_MSG(net != nullptr, "instance " << nl_.instance(inst).name
                                             << " has no pin " << pin);
  return value(*net);
}

void Simulator::drive_pin(InstId inst, const std::string& pin, bool v) {
  const NetId* net = nl_.instance(inst).find_pin(pin);
  LIMS_CHECK_MSG(net != nullptr, "instance " << nl_.instance(inst).name
                                             << " has no pin " << pin);
  set_net(*net, v, true);
}

bool Simulator::eval_cell(const Instance& inst) const {
  const auto it = func_by_cell_.find(cell_stem(inst.cell));
  LIMS_CHECK_MSG(it != func_by_cell_.end(),
                 "unknown cell " << inst.cell << " in simulation");
  auto in = [&](const char* pin) {
    const NetId* net = inst.find_pin(pin);
    LIMS_CHECK_MSG(net != nullptr,
                   "cell " << inst.name << " missing pin " << pin);
    return value(*net);
  };
  using tech::CellFunc;
  switch (it->second) {
    case CellFunc::kInv: return !in("A");
    case CellFunc::kBuf: return in("A");
    case CellFunc::kNand2: return !(in("A") && in("B"));
    case CellFunc::kNand3: return !(in("A") && in("B") && in("C"));
    case CellFunc::kNand4: return !(in("A") && in("B") && in("C") && in("D"));
    case CellFunc::kNor2: return !(in("A") || in("B"));
    case CellFunc::kNor3: return !(in("A") || in("B") || in("C"));
    case CellFunc::kAnd2: return in("A") && in("B");
    case CellFunc::kOr2: return in("A") || in("B");
    case CellFunc::kXor2: return in("A") != in("B");
    case CellFunc::kXnor2: return in("A") == in("B");
    case CellFunc::kMux2: return in("C") ? in("B") : in("A");
    case CellFunc::kAoi21: return !((in("A") && in("B")) || in("C"));
    case CellFunc::kOai21: return !((in("A") || in("B")) && in("C"));
    case CellFunc::kTie0: return false;
    case CellFunc::kTie1: return true;
    default:
      LIMS_UNREACHABLE("sequential cell in combinational eval");
  }
}

void Simulator::settle() {
  const std::size_t n_inst = nl_.instance_storage_size();
  // Bounded fixpoint iteration: each pass evaluates every combinational
  // gate; netlists are acyclic so this converges within depth passes.
  const std::size_t max_passes =
      budget_.max_passes > 0 ? budget_.max_passes : n_inst + 2;
  const Watchdog watchdog("netlist settle", budget_.wall_seconds);
  // Nets that changed during the most recent pass: on non-convergence
  // these are the oscillating nets, and naming them turns "combinational
  // loop?" into an actionable diagnostic.
  std::vector<NetId> last_changed;
  for (std::size_t pass = 0; pass < max_passes; ++pass) {
    watchdog.check();
    last_changed.clear();
    bool changed = false;
    for (std::size_t i = 0; i < n_inst; ++i) {
      const auto id = static_cast<InstId>(i);
      if (!nl_.is_live(id)) continue;
      const Instance& inst = nl_.instance(id);
      if (macros_.count(id)) continue;
      const auto fit = func_by_cell_.find(cell_stem(inst.cell));
      LIMS_CHECK_MSG(fit != func_by_cell_.end(),
                     "unknown cell " << inst.cell);
      if (tech::cell_func_sequential(fit->second)) continue;
      bool v = eval_cell(inst);
      const NetId* out = inst.find_pin("Y");
      LIMS_CHECK(out != nullptr);
      if (!forced_.empty()) {
        // A stuck net never follows its driver; compare against the forced
        // value so the fixpoint still converges.
        const auto it = forced_.find(*out);
        if (it != forced_.end()) v = it->second;
      }
      if (value(*out) != v) {
        set_net(*out, v, true);
        changed = true;
        last_changed.push_back(*out);
      }
    }
    if (!changed) return;
  }
  std::ostringstream os;
  os << "netlist simulation did not settle after " << max_passes
     << " passes (combinational loop?); still-oscillating nets:";
  const std::size_t show = std::min<std::size_t>(last_changed.size(), 10);
  for (std::size_t i = 0; i < show; ++i)
    os << ' ' << nl_.net_name(last_changed[i]);
  if (last_changed.size() > show)
    os << " (+" << last_changed.size() - show << " more)";
  throw Error(ErrorCode::kNonConvergence, os.str());
}

void Simulator::clock_edge() {
  ++cycles_;
  // Sample all flop D inputs first (old values), then commit.
  struct Capture {
    InstId inst;
    bool d;
  };
  std::vector<Capture> captures;
  const std::size_t n_inst = nl_.instance_storage_size();
  for (std::size_t i = 0; i < n_inst; ++i) {
    const auto id = static_cast<InstId>(i);
    if (!nl_.is_live(id) || macros_.count(id)) continue;
    const Instance& inst = nl_.instance(id);
    const auto fit = func_by_cell_.find(cell_stem(inst.cell));
    if (fit == func_by_cell_.end() ||
        !tech::cell_func_sequential(fit->second))
      continue;
    bool d = ff_state_[i];
    if (fit->second == tech::CellFunc::kDff) {
      d = value(*inst.find_pin("D"));
    } else if (fit->second == tech::CellFunc::kDffEn) {
      if (value(*inst.find_pin("EN"))) d = value(*inst.find_pin("D"));
    }
    captures.push_back({id, d});
  }
  // Macro models fire on pre-edge pin values (like the flop D sampling
  // above), then flop outputs commit, then logic resettles.
  for (auto& [inst, model] : macros_) model->on_clock(*this, inst);
  for (const auto& c : captures) {
    ff_state_[static_cast<std::size_t>(c.inst)] = c.d;
    const Instance& inst = nl_.instance(c.inst);
    set_net(*inst.find_pin("Q"), c.d, true);
  }
  settle();
}

std::uint64_t Simulator::toggles(NetId net) const {
  return toggle_counts_[static_cast<std::size_t>(net)];
}

double Simulator::activity(NetId net) const {
  if (cycles_ == 0) return 0.0;
  return static_cast<double>(toggles(net)) / static_cast<double>(cycles_);
}

std::uint64_t Simulator::macro_accesses(InstId inst) const {
  const auto it = macro_access_counts_.find(inst);
  return it == macro_access_counts_.end() ? 0 : it->second;
}

void Simulator::note_macro_access(InstId inst) {
  ++macro_access_counts_[inst];
}

}  // namespace limsynth::netlist
