#include "netlist/generators.hpp"

namespace limsynth::netlist {

std::string Builder::iname(const char* stem) {
  return prefix_ + "/" + stem + std::to_string(counter_++);
}

NetId Builder::unary(const char* cell, NetId a) {
  const NetId y = nl_.make_net();
  nl_.add_instance(iname(cell), std::string(cell) + "_X1",
                   {{"A", a}, {"Y", y}});
  return y;
}

NetId Builder::binary(const char* cell, NetId a, NetId b) {
  const NetId y = nl_.make_net();
  nl_.add_instance(iname(cell), std::string(cell) + "_X1",
                   {{"A", a}, {"B", b}, {"Y", y}});
  return y;
}

NetId Builder::inv(NetId a) { return unary("INV", a); }
NetId Builder::buf(NetId a) { return unary("BUF", a); }
NetId Builder::nand2(NetId a, NetId b) { return binary("NAND2", a, b); }
NetId Builder::nor2(NetId a, NetId b) { return binary("NOR2", a, b); }
NetId Builder::and2(NetId a, NetId b) { return binary("AND2", a, b); }
NetId Builder::or2(NetId a, NetId b) { return binary("OR2", a, b); }
NetId Builder::xor2(NetId a, NetId b) { return binary("XOR2", a, b); }
NetId Builder::xnor2(NetId a, NetId b) { return binary("XNOR2", a, b); }

NetId Builder::mux2(NetId a, NetId b, NetId sel) {
  const NetId y = nl_.make_net();
  nl_.add_instance(iname("MUX2"), "MUX2_X1",
                   {{"A", a}, {"B", b}, {"C", sel}, {"Y", y}});
  return y;
}

NetId Builder::tie0() {
  const NetId y = nl_.make_net();
  nl_.add_instance(iname("TIE0"), "TIE0_X1", {{"Y", y}});
  return y;
}

NetId Builder::tie1() {
  const NetId y = nl_.make_net();
  nl_.add_instance(iname("TIE1"), "TIE1_X1", {{"Y", y}});
  return y;
}

NetId Builder::and_tree(std::vector<NetId> xs) {
  LIMS_CHECK(!xs.empty());
  while (xs.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < xs.size(); i += 2)
      next.push_back(and2(xs[i], xs[i + 1]));
    if (xs.size() % 2) next.push_back(xs.back());
    xs = std::move(next);
  }
  return xs[0];
}

NetId Builder::or_tree(std::vector<NetId> xs) {
  LIMS_CHECK(!xs.empty());
  while (xs.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < xs.size(); i += 2)
      next.push_back(or2(xs[i], xs[i + 1]));
    if (xs.size() % 2) next.push_back(xs.back());
    xs = std::move(next);
  }
  return xs[0];
}

std::vector<NetId> Builder::decoder(const std::vector<NetId>& addr,
                                    NetId enable) {
  LIMS_CHECK(!addr.empty() && addr.size() <= 10);
  const std::size_t n = addr.size();

  // Small decoders: direct minterm trees. The enable joins at the root so
  // it arrives in parallel with the address tree (one level of latency for
  // the late-arriving enable, not the full tree depth).
  if (n <= 3) {
    std::vector<NetId> addr_bar;
    addr_bar.reserve(n);
    for (NetId a : addr) addr_bar.push_back(inv(a));
    const std::size_t outputs = std::size_t{1} << n;
    std::vector<NetId> onehot;
    onehot.reserve(outputs);
    for (std::size_t code = 0; code < outputs; ++code) {
      std::vector<NetId> terms;
      terms.reserve(n);
      for (std::size_t bit = 0; bit < n; ++bit)
        terms.push_back((code >> bit) & 1 ? addr[bit] : addr_bar[bit]);
      NetId hot = and_tree(std::move(terms));
      if (enable != kNoNet) hot = and2(hot, enable);
      onehot.push_back(hot);
    }
    return onehot;
  }

  // Predecoding: split the address, decode the halves, AND the one-hots.
  // Cuts gate count from O(n * 2^n) to O(2^n) — standard decoder practice.
  // The enable rides on the (smaller) high half, quieting the final ANDs.
  const std::size_t lo_bits = n / 2;
  const std::vector<NetId> lo(addr.begin(),
                              addr.begin() + static_cast<long>(lo_bits));
  const std::vector<NetId> hi(addr.begin() + static_cast<long>(lo_bits),
                              addr.end());
  const std::vector<NetId> lo_hot = decoder(lo);
  const std::vector<NetId> hi_hot = decoder(hi, enable);
  std::vector<NetId> onehot;
  onehot.reserve(std::size_t{1} << n);
  for (std::size_t h = 0; h < hi_hot.size(); ++h)
    for (std::size_t l = 0; l < lo_hot.size(); ++l)
      onehot.push_back(and2(hi_hot[h], lo_hot[l]));
  return onehot;
}

NetId Builder::equal(const std::vector<NetId>& a, const std::vector<NetId>& b) {
  LIMS_CHECK(a.size() == b.size() && !a.empty());
  std::vector<NetId> eq_bits;
  eq_bits.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    eq_bits.push_back(xnor2(a[i], b[i]));
  return and_tree(std::move(eq_bits));
}

NetId Builder::less_than(const std::vector<NetId>& a,
                         const std::vector<NetId>& b) {
  LIMS_CHECK(a.size() == b.size() && !a.empty());
  // From the MSB down: lt when a_i=0, b_i=1 and all higher bits equal.
  NetId lt = kNoNet;
  NetId eq_above = kNoNet;
  for (std::size_t i = a.size(); i-- > 0;) {
    const NetId bit_lt = and2(inv(a[i]), b[i]);
    const NetId bit_eq = xnor2(a[i], b[i]);
    if (lt == kNoNet) {
      lt = bit_lt;
      eq_above = bit_eq;
    } else {
      lt = or2(lt, and2(eq_above, bit_lt));
      eq_above = and2(eq_above, bit_eq);
    }
  }
  return lt;
}

std::vector<NetId> Builder::priority(const std::vector<NetId>& reqs,
                                     NetId* any) {
  LIMS_CHECK(!reqs.empty());
  std::vector<NetId> grants;
  grants.reserve(reqs.size());
  NetId blocked = kNoNet;  // OR of all earlier requests
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    if (i == 0) {
      grants.push_back(buf(reqs[0]));
      blocked = reqs[0];
    } else {
      grants.push_back(and2(reqs[i], inv(blocked)));
      blocked = or2(blocked, reqs[i]);
    }
  }
  if (any != nullptr) *any = blocked;
  return grants;
}

Builder::FullAdd Builder::full_adder(NetId a, NetId b, NetId c) {
  const NetId axb = xor2(a, b);
  FullAdd fa;
  fa.sum = xor2(axb, c);
  fa.carry = or2(and2(a, b), and2(axb, c));
  return fa;
}

std::vector<NetId> Builder::add(const std::vector<NetId>& a,
                                const std::vector<NetId>& b, NetId cin,
                                NetId* cout) {
  LIMS_CHECK(a.size() == b.size() && !a.empty());
  std::vector<NetId> sum;
  sum.reserve(a.size());
  NetId carry = (cin == kNoNet) ? tie0() : cin;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const FullAdd fa = full_adder(a[i], b[i], carry);
    sum.push_back(fa.sum);
    carry = fa.carry;
  }
  if (cout != nullptr) *cout = carry;
  return sum;
}

std::vector<NetId> Builder::multiply(const std::vector<NetId>& a,
                                     const std::vector<NetId>& b) {
  LIMS_CHECK(!a.empty() && !b.empty());
  const std::size_t n = a.size(), m = b.size();
  // Partial-product accumulation, row by row.
  std::vector<NetId> acc;  // current partial sum, LSB first
  for (std::size_t j = 0; j < m; ++j) {
    std::vector<NetId> row;
    row.reserve(n);
    for (std::size_t i = 0; i < n; ++i) row.push_back(and2(a[i], b[j]));
    if (j == 0) {
      acc = std::move(row);
    } else {
      // acc[j..] += row (row is shifted left by j).
      NetId carry = tie0();
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t pos = i + j;
        if (pos < acc.size()) {
          const FullAdd fa = full_adder(acc[pos], row[i], carry);
          acc[pos] = fa.sum;
          carry = fa.carry;
        } else {
          const FullAdd fa = full_adder(row[i], tie0(), carry);
          acc.push_back(fa.sum);
          carry = fa.carry;
        }
      }
      acc.push_back(buf(carry));
    }
  }
  acc.resize(n + m, acc.empty() ? tie0() : acc.back());
  return acc;
}

std::vector<NetId> Builder::registers(const std::vector<NetId>& d, NetId clk,
                                      NetId en) {
  LIMS_CHECK(!d.empty());
  std::vector<NetId> q;
  q.reserve(d.size());
  for (NetId di : d) {
    const NetId qi = nl_.make_net();
    if (en == kNoNet) {
      nl_.add_instance(iname("DFF"), "DFF_X1",
                       {{"D", di}, {"CK", clk}, {"Q", qi}});
    } else {
      nl_.add_instance(iname("DFFE"), "DFFE_X1",
                       {{"D", di}, {"EN", en}, {"CK", clk}, {"Q", qi}});
    }
    q.push_back(qi);
  }
  return q;
}

NetId Builder::onehot_mux(const std::vector<NetId>& sel,
                          const std::vector<NetId>& in) {
  LIMS_CHECK(sel.size() == in.size() && !sel.empty());
  // NAND2 / NAND-collect form: OR of ANDs in two levels for <= 4 ways.
  std::vector<NetId> terms;
  terms.reserve(sel.size());
  for (std::size_t i = 0; i < sel.size(); ++i)
    terms.push_back(nand2(sel[i], in[i]));
  while (terms.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i < terms.size(); i += 4) {
      const std::size_t n = std::min<std::size_t>(4, terms.size() - i);
      if (n == 1) {
        next.push_back(inv(terms[i]));  // re-invert lone survivor
      } else {
        const NetId y = nl_.make_net();
        std::vector<Connection> conns;
        static const char* kPins[] = {"A", "B", "C", "D"};
        for (std::size_t k = 0; k < n; ++k)
          conns.push_back({kPins[k], terms[i + k]});
        conns.push_back({"Y", y});
        nl_.add_instance(iname("NANDN"),
                         n == 2 ? "NAND2_X1" : (n == 3 ? "NAND3_X1" : "NAND4_X1"),
                         std::move(conns));
        next.push_back(y);
      }
    }
    // NAND of NANDs == OR of ANDs; for deeper trees, alternate with
    // inverters to keep polarity.
    if (next.size() > 1)
      for (auto& t : next) t = inv(t);
    terms = std::move(next);
  }
  return terms[0];
}

}  // namespace limsynth::netlist
