#include "netlist/levelize.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace limsynth::netlist {

Levelization levelize(const BoundDesign& bound) {
  bound.check_fresh();
  const std::size_t n = bound.instance_count();

  // A combinational member: live, and neither sequential nor a macro.
  // Everything else (flop Q, macro outputs, primary inputs) is a level
  // source whose value is fixed for the duration of one settle pass.
  std::vector<bool> comb(n, false);
  std::size_t comb_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<InstId>(i);
    if (!bound.is_live(id) || bound.is_seq_or_macro(id)) continue;
    comb[i] = true;
    ++comb_count;
  }

  // Kahn's algorithm in waves: pending[i] counts the input conns of gate
  // i fed by not-yet-ordered combinational gates. Both the count and the
  // decrement walk enumerate the same conn set (every input conn, sink
  // side == sinks(net) entries), so multi-edges stay balanced.
  std::vector<std::uint32_t> pending(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (!comb[i]) continue;
    for (const BoundConn& c : bound.conns(static_cast<InstId>(i))) {
      if (c.is_output || c.net == kNoNet) continue;
      const InstId d = bound.driver_inst(c.net);
      if (d >= 0 && comb[static_cast<std::size_t>(d)]) ++pending[i];
    }
  }

  Levelization lv;
  lv.order.reserve(comb_count);
  std::vector<InstId> wave;
  for (std::size_t i = 0; i < n; ++i)
    if (comb[i] && pending[i] == 0) wave.push_back(static_cast<InstId>(i));

  std::vector<InstId> next;
  while (!wave.empty()) {
    lv.level_begin.push_back(static_cast<std::uint32_t>(lv.order.size()));
    next.clear();
    for (const InstId g : wave) {
      lv.order.push_back(g);
      for (const BoundConn& c : bound.conns(g)) {
        if (!c.is_output || c.net == kNoNet) continue;
        for (const BoundDesign::SinkRef& s : bound.sinks(c.net)) {
          if (!comb[static_cast<std::size_t>(s.inst)]) continue;
          if (--pending[static_cast<std::size_t>(s.inst)] == 0)
            next.push_back(s.inst);
        }
      }
    }
    std::sort(next.begin(), next.end());
    wave.swap(next);
  }
  lv.level_begin.push_back(static_cast<std::uint32_t>(lv.order.size()));

  if (lv.order.size() != comb_count) {
    std::ostringstream os;
    os << "combinational cycle: " << (comb_count - lv.order.size())
       << " gate(s) cannot be levelized;";
    std::size_t shown = 0;
    for (std::size_t i = 0; i < n && shown < 10; ++i) {
      if (!comb[i] || pending[i] == 0) continue;
      os << ' ' << bound.netlist().instance(static_cast<InstId>(i)).name;
      ++shown;
    }
    throw Error(ErrorCode::kNonConvergence, os.str());
  }
  return lv;
}

}  // namespace limsynth::netlist
