#include "netlist/bound.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace limsynth::netlist {

namespace {

// Local copy of synth::pin_base (netlist must not depend on synth):
// strips the bus index, "DI[3]" -> "DI".
std::string base_of(const std::string& pin) {
  const auto pos = pin.find('[');
  return pos == std::string::npos ? pin : pin.substr(0, pos);
}

}  // namespace

BoundDesign::BoundDesign(const Netlist& nl, const liberty::Library& lib)
    : nl_(&nl), lib_(&lib), bound_revision_(nl.revision()) {
  const std::size_t n_inst = nl.instance_storage_size();
  const std::size_t n_nets = nl.nets().size();
  const std::size_t n_cells = lib.cells().size();

  // ---------------------------------------------------- per-cell tables
  // Built for every library cell up front: the tables are tiny (slot-count
  // squared pointers) and binding typically touches most of the library.
  tables_.resize(n_cells);
  // Base pin name -> (slot, is_output) per cell, used only during bind.
  std::vector<std::unordered_map<std::string, std::pair<int, bool>>> slot_of(
      n_cells);
  for (std::size_t ci = 0; ci < n_cells; ++ci) {
    const liberty::LibCell& cell = lib.cells()[ci];
    CellTables& t = tables_[ci];
    t.n_in = cell.inputs.size();
    t.n_out = cell.outputs.size();
    t.arcs.assign(t.n_in * t.n_out, nullptr);
    t.clock_arcs.assign(t.n_out, nullptr);
    t.constraints.assign(t.n_in, nullptr);
    auto& slots = slot_of[ci];
    slots.reserve(t.n_in + t.n_out);
    for (std::size_t s = 0; s < t.n_in; ++s)
      slots.emplace(cell.inputs[s].name, std::make_pair(static_cast<int>(s),
                                                        false));
    for (std::size_t s = 0; s < t.n_out; ++s)
      slots.emplace(cell.outputs[s].name, std::make_pair(static_cast<int>(s),
                                                         true));
    const std::string& ck = cell.clock_pin.empty() ? "CK" : cell.clock_pin;
    {
      const auto it = slots.find(ck);
      if (it != slots.end() && !it->second.second)
        t.clock_slot = it->second.first;
    }
    for (const auto& arc : cell.arcs) {
      const auto to = slots.find(arc.to);
      if (to == slots.end() || !to->second.second) continue;
      const auto out_slot = static_cast<std::size_t>(to->second.first);
      if (arc.from == ck) t.clock_arcs[out_slot] = &arc;
      const auto from = slots.find(arc.from);
      if (from == slots.end() || from->second.second) continue;
      t.arcs[static_cast<std::size_t>(from->second.first) * t.n_out +
             out_slot] = &arc;
    }
    for (const auto& con : cell.constraints) {
      const auto it = slots.find(con.pin);
      if (it != slots.end() && !it->second.second)
        t.constraints[static_cast<std::size_t>(it->second.first)] = &con;
    }
  }

  // ------------------------------------------------ instances and conns
  inst_cell_.assign(n_inst, kNoCell);
  inst_conn_range_.assign(n_inst, {0, 0});
  std::size_t total_conns = 0;
  for (std::size_t i = 0; i < n_inst; ++i)
    if (nl.is_live(static_cast<InstId>(i)))
      total_conns += nl.instance(static_cast<InstId>(i)).conns.size();
  conns_.reserve(total_conns);
  inst_pin_sorted_.reserve(total_conns);
  pin_ids_.reserve(64);

  std::string base;  // reused scratch
  for (std::size_t i = 0; i < n_inst; ++i) {
    const auto id = static_cast<InstId>(i);
    if (!nl.is_live(id)) continue;
    ++live_instances_;
    const Instance& inst = nl.instance(id);
    const std::size_t ci = lib.index_of(inst.cell);
    LIMS_CHECK_MSG(ci != liberty::Library::npos,
                   "no cell " << inst.cell << " in library " << lib.name());
    inst_cell_[i] = static_cast<LibCellId>(ci);
    const liberty::LibCell& cell = lib.cells()[ci];
    const auto& slots = slot_of[ci];

    const auto first = static_cast<std::uint32_t>(conns_.size());
    for (const auto& c : inst.conns) {
      BoundConn bc;
      bc.net = c.net;
      // Intern the full pin name.
      const auto [it, inserted] =
          pin_ids_.emplace(c.pin, static_cast<PinId>(pin_names_.size()));
      if (inserted) pin_names_.push_back(c.pin);
      bc.pin = it->second;
      bc.is_output = Netlist::is_output_pin(c.pin);
      base = base_of(c.pin);
      const auto sit = slots.find(base);
      if (sit != slots.end() && sit->second.second == bc.is_output) {
        bc.slot = static_cast<std::int16_t>(sit->second.first);
        if (!bc.is_output) {
          const liberty::PinModel& pm =
              cell.inputs[static_cast<std::size_t>(bc.slot)];
          bc.is_clock = pm.is_clock;
          bc.cap = pm.cap;
        }
      } else {
        // Unmodeled input pins cannot be loaded or timed — reject at bind
        // time with the same error class compute_net_loads used to raise.
        LIMS_CHECK_MSG(bc.is_output,
                       "no pin " << c.pin << " on " << cell.name);
        bc.slot = -1;
      }
      conns_.push_back(bc);
      inst_pin_sorted_.emplace_back(bc.pin, bc.net);
    }
    const auto last = static_cast<std::uint32_t>(conns_.size());
    inst_conn_range_[i] = {first, last};
    std::sort(inst_pin_sorted_.begin() + first,
              inst_pin_sorted_.begin() + last);
  }

  // ------------------------------------------------ per-cell instance ranges
  {
    std::vector<std::uint32_t> counts(n_cells, 0);
    for (std::size_t i = 0; i < n_inst; ++i)
      if (inst_cell_[i] >= 0)
        ++counts[static_cast<std::size_t>(inst_cell_[i])];
    cell_inst_range_.resize(n_cells);
    std::uint32_t at = 0;
    for (std::size_t ci = 0; ci < n_cells; ++ci) {
      cell_inst_range_[ci] = {at, at + counts[ci]};
      at += counts[ci];
    }
    cell_insts_.resize(at);
    std::vector<std::uint32_t> fill(n_cells, 0);
    for (std::size_t i = 0; i < n_inst; ++i) {
      const LibCellId cid = inst_cell_[i];
      if (cid < 0) continue;
      const auto ci = static_cast<std::size_t>(cid);
      cell_insts_[cell_inst_range_[ci].first + fill[ci]++] =
          static_cast<InstId>(i);
    }
  }

  // ------------------------------------------------------- connectivity
  net_driver_.assign(n_nets, SinkRef{-1, 0});
  net_sink_cap_.assign(n_nets, 0.0);
  {
    std::vector<std::uint32_t> counts(n_nets, 0);
    for (const auto& bc : conns_)
      if (!bc.is_output) ++counts[static_cast<std::size_t>(bc.net)];
    net_sink_range_.resize(n_nets);
    std::uint32_t at = 0;
    for (std::size_t n = 0; n < n_nets; ++n) {
      net_sink_range_[n] = {at, at + counts[n]};
      at += counts[n];
    }
    sink_refs_.resize(at);
    std::vector<std::uint32_t> fill(n_nets, 0);
    for (std::size_t i = 0; i < n_inst; ++i) {
      const auto& r = inst_conn_range_[i];
      for (std::uint32_t g = r.first; g < r.second; ++g) {
        const BoundConn& bc = conns_[g];
        const auto n = static_cast<std::size_t>(bc.net);
        if (bc.is_output) {
          net_driver_[n] = SinkRef{static_cast<InstId>(i), g};
        } else {
          sink_refs_[net_sink_range_[n].first + fill[n]++] =
              SinkRef{static_cast<InstId>(i), g};
          net_sink_cap_[n] += bc.cap;
        }
      }
    }
  }
}

void BoundDesign::check_fresh() const {
  if (nl_->revision() != bound_revision_) {
    LIMS_FAIL(ErrorCode::kStaleBinding,
              "bound design for netlist '"
                  << nl_->name() << "' is stale (bound at revision "
                  << bound_revision_ << ", netlist now at revision "
                  << nl_->revision() << "); rebind before querying");
  }
}

Span<InstId> BoundDesign::instances_of(LibCellId cid) const {
  const auto& r = cell_inst_range_[static_cast<std::size_t>(cid)];
  return {cell_insts_.data() + r.first, r.second - r.first};
}

PinId BoundDesign::pin_id(const std::string& name) const {
  const auto it = pin_ids_.find(name);
  return it == pin_ids_.end() ? kNoPin : it->second;
}

NetId BoundDesign::pin_net(InstId inst, PinId pin) const {
  if (pin == kNoPin) return kNoNet;
  const auto& r = inst_conn_range_[static_cast<std::size_t>(inst)];
  const auto first = inst_pin_sorted_.begin() + r.first;
  const auto last = inst_pin_sorted_.begin() + r.second;
  const auto it = std::lower_bound(
      first, last, std::make_pair(pin, kNoNet),
      [](const std::pair<PinId, NetId>& a, const std::pair<PinId, NetId>& b) {
        return a.first < b.first;
      });
  return (it != last && it->first == pin) ? it->second : kNoNet;
}

NetId MacroBindings::pin_net(const Netlist& nl, InstId inst,
                             const std::string& pin) const {
  auto& cache = pin_cache_[inst];
  if (cache.empty()) {
    const Instance& in = nl.instance(inst);
    cache.reserve(in.conns.size());
    for (const auto& c : in.conns) cache.emplace(c.pin, c.net);
  }
  const auto it = cache.find(pin);
  return it == cache.end() ? kNoNet : it->second;
}

}  // namespace limsynth::netlist
