// Gate-level two-phase logic simulation.
//
// Plays the role Modelsim plays in the paper's flow: functional
// verification of the elaborated netlists and generation of switching
// activity (.saif substitute) for power analysis. Memory-brick macros are
// attached as behavioral models through the MacroModel interface.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "netlist/bound.hpp"
#include "netlist/netlist.hpp"
#include "tech/stdcell.hpp"

namespace limsynth::netlist {

class Simulator;

/// Strips the drive suffix: "NAND2_X4" -> "NAND2". Both simulation
/// engines use it to map instance cell names onto CellFunc templates.
std::string cell_stem(const std::string& cell);

/// Behavioral model for a macro instance (e.g. a memory brick bank).
/// Called on every clock edge with read access to current net values and
/// the ability to schedule its output values for the new cycle.
///
/// Models must confine themselves to the virtual macro-port surface of
/// Simulator (pin_value / drive_pin / note_macro_access) so the same
/// model runs unmodified on the event-driven engine through its adapter.
class MacroModel {
 public:
  virtual ~MacroModel() = default;
  /// Invoked at the clock edge, before combinational resettling. Read pin
  /// values with sim.pin_value(inst, "NAME[i]") and drive outputs with
  /// sim.drive_pin(inst, "DO[j]", v).
  virtual void on_clock(Simulator& sim, InstId inst) = 0;

  // State mutation surface: models with internal storage expose it as
  // state_rows() words of state_bits() bits each, so fault injectors
  // (SEU campaigns) and checkpointers can read and corrupt live state
  // without knowing the concrete model type. The default is a model with
  // no inspectable state; peek/poke on it throw Error(kInvalidConfig).
  virtual int state_rows() const { return 0; }
  virtual int state_bits() const { return 0; }
  /// Reads stored word `row`. Throws Error(kInvalidConfig) when the row is
  /// out of range or the model exposes no state.
  virtual std::uint64_t peek(int row) const;
  /// Overwrites stored word `row` (value is masked to state_bits()). Same
  /// error contract as peek. Side-band state (e.g. CAM validity flags) is
  /// left untouched — a poke models corrupted storage, not a write access.
  virtual void poke(int row, std::uint64_t value);
  /// Single-event upset helper: XORs `mask` into stored word `row`.
  void flip_state_bits(int row, std::uint64_t mask) {
    poke(row, peek(row) ^ mask);
  }
};

/// Watchdog budgets for the settle fixpoint. Zero fields mean "automatic":
/// max_passes defaults to instance count + 2 (enough for any acyclic
/// netlist) and wall_seconds to unlimited.
struct SettleBudget {
  std::size_t max_passes = 0;
  double wall_seconds = 0.0;
};

class Simulator {
 public:
  Simulator(const Netlist& nl, const tech::StdCellLib& cells);
  virtual ~Simulator() = default;

  /// Attaches a behavioral model to a macro instance.
  void attach(InstId inst, std::shared_ptr<MacroModel> model);

  /// Sets a primary input (call settle() afterwards).
  void set_input(NetId net, bool value);
  void set_bus(const std::vector<NetId>& bus, std::uint64_t value);

  /// Propagates combinational logic to a fixpoint. Throws
  /// Error(kNonConvergence) naming the still-oscillating nets when the
  /// pass budget runs out (combinational loop), and
  /// Error(kResourceExhausted) when the wall-clock budget does.
  void settle();

  /// Overrides the settle watchdog budgets (see SettleBudget).
  void set_settle_budget(const SettleBudget& budget) { budget_ = budget; }

  /// One rising clock edge: DFFs capture, macro models fire, then logic
  /// resettles. Counts as one cycle for activity statistics.
  void clock_edge();

  bool value(NetId net) const;
  std::uint64_t bus_value(const std::vector<NetId>& bus) const;

  /// Macro-model port (virtual so the event-driven engine can present
  /// itself to unmodified MacroModels through an adapter).
  virtual bool pin_value(InstId inst, const std::string& pin) const;
  virtual void drive_pin(InstId inst, const std::string& pin, bool value);

  /// Fault-injection hook: clamps a net to a fixed value. A forced net
  /// resists every driver (primary inputs, gates, flops, macro models)
  /// until released — the gate-level model of a stuck-at net, e.g. a
  /// defective word line or bank-select wire.
  void force_net(NetId net, bool value);
  void release_net(NetId net);

  /// Activity statistics for power analysis.
  std::uint64_t toggles(NetId net) const;
  std::uint64_t cycles() const { return cycles_; }
  /// Toggle rate per cycle of a net (both edges counted).
  double activity(NetId net) const;
  /// Number of clock cycles in which a macro instance was "accessed"
  /// (its model reported activity via note_macro_access).
  std::uint64_t macro_accesses(InstId inst) const;
  virtual void note_macro_access(InstId inst);

  const Netlist& netlist() const { return nl_; }
  /// The shared macro-model binding table (attach/access accounting).
  const MacroBindings& macro_bindings() const { return macros_; }

 private:
  /// Per-instance resolution of cell function and pin nets, computed once
  /// at construction so settle()/clock_edge() run index-only (no string
  /// lookups on the hot path).
  struct GateBinding {
    tech::CellFunc func = tech::CellFunc::kInv;
    bool known = false;       // cell stem found in the StdCellLib
    bool sequential = false;
    int nin = 0;
    NetId out = kNoNet;                          // Y
    NetId in[4] = {kNoNet, kNoNet, kNoNet, kNoNet};  // A, B, C, D
    NetId d = kNoNet, q = kNoNet, en = kNoNet;   // DFF/DFFE pins
    std::int8_t missing_input = -1;  // first unresolved input position
  };

  void set_net(NetId net, bool value, bool count_toggle);
  bool eval_gate(InstId id, const GateBinding& gb) const;

  const Netlist& nl_;
  std::vector<GateBinding> gates_;  // parallel to instance storage
  std::vector<bool> values_;
  std::vector<bool> ff_state_;  // per instance (DFF/DFFE)
  std::vector<std::uint64_t> toggle_counts_;
  std::map<NetId, bool> forced_;  // stuck-at net faults
  MacroBindings macros_;
  std::uint64_t cycles_ = 0;
  SettleBudget budget_;
};

}  // namespace limsynth::netlist
