#include "spgemm/blocking.hpp"

#include "util/error.hpp"

namespace limsynth::spgemm {

std::vector<BlockTask> make_block_tasks(const SparseMatrix& a,
                                        const SparseMatrix& b,
                                        const BlockingConfig& config) {
  LIMS_CHECK(a.cols() == b.rows());
  LIMS_CHECK(config.row_block >= 1 && config.col_stripe >= 1);
  std::vector<BlockTask> tasks;
  int rb = 0;
  for (int r0 = 0; r0 < a.rows(); r0 += config.row_block, ++rb) {
    int cs = 0;
    for (int c0 = 0; c0 < b.cols(); c0 += config.col_stripe, ++cs) {
      BlockTask t;
      t.row_block_index = rb;
      t.col_stripe_index = cs;
      t.row_begin = r0;
      t.row_end = std::min(a.rows(), r0 + config.row_block);
      t.col_begin = c0;
      t.col_end = std::min(b.cols(), c0 + config.col_stripe);
      tasks.push_back(t);
    }
  }
  return tasks;
}

BlockedColumns slice_rows(const SparseMatrix& a, int row_begin, int row_end) {
  LIMS_CHECK(row_begin >= 0 && row_end <= a.rows() && row_begin < row_end);
  BlockedColumns out;
  out.row_begin = row_begin;
  out.entries.resize(static_cast<std::size_t>(a.cols()));
  for (int c = 0; c < a.cols(); ++c) {
    for (int k = a.col_begin(c); k < a.col_end(c); ++k) {
      const int r = a.row_index(k);
      if (r >= row_begin && r < row_end)
        out.entries[static_cast<std::size_t>(c)].push_back(
            {r - row_begin, a.value(k)});
    }
  }
  return out;
}

}  // namespace limsynth::spgemm
