// Sparse matrices in compressed sparse column (CSC) form — the layout the
// column-by-column SpGEMM algorithm [1] and both accelerator models
// consume. Row indices within a column are kept sorted.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace limsynth::spgemm {

struct Entry {
  int row = 0;
  double value = 0.0;
};

class SparseMatrix {
 public:
  SparseMatrix() = default;
  SparseMatrix(int rows, int cols);

  /// Builds from (row, col, value) triplets; duplicates are summed.
  static SparseMatrix from_triplets(
      int rows, int cols, std::vector<std::tuple<int, int, double>> triplets);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::int64_t nnz() const { return static_cast<std::int64_t>(row_idx_.size()); }

  /// Column slice accessors (CSC).
  int col_begin(int col) const { return col_ptr_[static_cast<std::size_t>(col)]; }
  int col_end(int col) const { return col_ptr_[static_cast<std::size_t>(col) + 1]; }
  int col_nnz(int col) const { return col_end(col) - col_begin(col); }
  int row_index(int k) const { return row_idx_[static_cast<std::size_t>(k)]; }
  double value(int k) const { return values_[static_cast<std::size_t>(k)]; }

  /// Entries of one column, sorted by row.
  std::vector<Entry> column(int col) const;

  double density() const;
  double avg_col_nnz() const;
  int max_col_nnz() const;

  /// Approximate equality (same pattern, values within rel_tol).
  bool approx_equal(const SparseMatrix& other, double rel_tol = 1e-9) const;

  /// Number of multiply-add operations in computing this * other.
  std::int64_t flops_with(const SparseMatrix& other) const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<int> col_ptr_;   // size cols+1
  std::vector<int> row_idx_;   // size nnz, sorted within each column
  std::vector<double> values_;
};

}  // namespace limsynth::spgemm
