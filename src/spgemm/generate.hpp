// Sparse-matrix generators and the UF-analog benchmark suite.
//
// The paper back-annotates its silicon measurements onto University of
// Florida sparse-matrix-collection benchmarks, which we cannot ship.
// The suite below generates synthetic analogs with matched size, nonzero
// count, and degree structure (Erdős–Rényi for uniform graphs, R-MAT for
// power-law graphs, banded for meshes/roads) — the properties that drive
// SpGEMM behaviour. See DESIGN.md §2 for the substitution rationale.
#pragma once

#include <string>
#include <vector>

#include "spgemm/sparse.hpp"
#include "util/rng.hpp"

namespace limsynth::spgemm {

/// Erdős–Rényi: n x n with ~edges nonzeros uniformly placed.
SparseMatrix gen_erdos_renyi(int n, std::int64_t edges, Rng& rng);

/// R-MAT (recursive matrix) power-law generator.
SparseMatrix gen_rmat(int scale, std::int64_t edges, double a, double b,
                      double c, Rng& rng);

/// Banded matrix: each column has nonzeros within +-bandwidth of the
/// diagonal (mesh / road-network analog).
SparseMatrix gen_banded(int n, int band, int nnz_per_col, Rng& rng);

/// Block-dense: n x n with dense blocks of size `block` on the diagonal.
SparseMatrix gen_block_diagonal(int n, int block, Rng& rng);

/// Contraction-structured matrix: columns are grouped; every column in a
/// group draws its `nnz_per_col` rows from that group's small set of
/// `supernodes` rows (graph-contraction / aggregation pattern [4]). Column
/// results of A*A then stay within the supernode set — wide merges with
/// few distinct output rows, the CAM architecture's best case.
SparseMatrix gen_contraction(int n, int group, int supernodes,
                             int nnz_per_col, Rng& rng);

struct Benchmark {
  std::string name;      // synthetic analog tag
  std::string models;    // which UF matrix family it stands in for
  SparseMatrix matrix;   // C = A * A is computed on it
};

/// The Fig. 6 benchmark suite, ordered roughly from merge-light (small
/// LiM advantage) to merge-heavy (large LiM advantage).
std::vector<Benchmark> uf_analog_suite(std::uint64_t seed = 7);

}  // namespace limsynth::spgemm
