#include "spgemm/generate.hpp"

#include <tuple>

#include "util/error.hpp"

namespace limsynth::spgemm {

SparseMatrix gen_erdos_renyi(int n, std::int64_t edges, Rng& rng) {
  LIMS_CHECK(n > 0 && edges >= 0);
  std::vector<std::tuple<int, int, double>> trips;
  trips.reserve(static_cast<std::size_t>(edges));
  for (std::int64_t e = 0; e < edges; ++e) {
    const int r = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    const int c = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    trips.emplace_back(r, c, rng.uniform(0.5, 1.5));
  }
  return SparseMatrix::from_triplets(n, n, std::move(trips));
}

SparseMatrix gen_rmat(int scale, std::int64_t edges, double a, double b,
                      double c, Rng& rng) {
  LIMS_CHECK(scale >= 1 && scale <= 24);
  LIMS_CHECK(a + b + c < 1.0);
  const int n = 1 << scale;
  std::vector<std::tuple<int, int, double>> trips;
  trips.reserve(static_cast<std::size_t>(edges));
  for (std::int64_t e = 0; e < edges; ++e) {
    int r = 0, col = 0;
    for (int bit = 0; bit < scale; ++bit) {
      const double u = rng.uniform();
      int quad;
      if (u < a) quad = 0;
      else if (u < a + b) quad = 1;
      else if (u < a + b + c) quad = 2;
      else quad = 3;
      r = (r << 1) | (quad >> 1);
      col = (col << 1) | (quad & 1);
    }
    trips.emplace_back(r, col, rng.uniform(0.5, 1.5));
  }
  return SparseMatrix::from_triplets(n, n, std::move(trips));
}

SparseMatrix gen_banded(int n, int band, int nnz_per_col, Rng& rng) {
  LIMS_CHECK(n > 0 && band >= 0 && nnz_per_col >= 1);
  std::vector<std::tuple<int, int, double>> trips;
  for (int c = 0; c < n; ++c) {
    trips.emplace_back(c, c, rng.uniform(0.5, 1.5));  // diagonal
    for (int k = 1; k < nnz_per_col; ++k) {
      const int offset = static_cast<int>(rng.range(-band, band));
      const int r = std::min(n - 1, std::max(0, c + offset));
      trips.emplace_back(r, c, rng.uniform(0.5, 1.5));
    }
  }
  return SparseMatrix::from_triplets(n, n, std::move(trips));
}

SparseMatrix gen_block_diagonal(int n, int block, Rng& rng) {
  LIMS_CHECK(n > 0 && block > 0 && n % block == 0);
  std::vector<std::tuple<int, int, double>> trips;
  for (int base = 0; base < n; base += block) {
    for (int r = 0; r < block; ++r)
      for (int c = 0; c < block; ++c)
        if (rng.chance(0.7))
          trips.emplace_back(base + r, base + c, rng.uniform(0.5, 1.5));
  }
  return SparseMatrix::from_triplets(n, n, std::move(trips));
}

SparseMatrix gen_contraction(int n, int group, int supernodes,
                             int nnz_per_col, Rng& rng) {
  LIMS_CHECK(n > 0 && group > 0 && n % group == 0);
  LIMS_CHECK(supernodes >= 1 && supernodes <= group);
  std::vector<std::tuple<int, int, double>> trips;
  for (int base = 0; base < n; base += group) {
    // Pick this group's supernode rows within its own range so products
    // stay confined to the group.
    std::vector<int> supers;
    supers.reserve(static_cast<std::size_t>(supernodes));
    for (int s = 0; s < supernodes; ++s)
      supers.push_back(base + static_cast<int>(rng.below(
                                  static_cast<std::uint64_t>(group))));
    for (int c = base; c < base + group; ++c) {
      for (int k = 0; k < nnz_per_col; ++k) {
        const int r = supers[rng.below(supers.size())];
        trips.emplace_back(r, c, rng.uniform(0.5, 1.5));
      }
    }
  }
  return SparseMatrix::from_triplets(n, n, std::move(trips));
}

std::vector<Benchmark> uf_analog_suite(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Benchmark> suite;

  // Merge-light: near-diagonal, tiny columns. The LiM chip's 32-way column
  // parallelism is mostly idle and both chips are traffic-bound.
  suite.push_back({"tridiag_syn", "structural meshes (e.g. 1D FEM chains)",
                   gen_banded(8192, 1, 3, rng)});
  suite.push_back({"road_syn", "road networks (e.g. roadNet-*)",
                   gen_banded(8192, 12, 4, rng)});
  suite.push_back({"p2p_syn", "sparse P2P graphs (e.g. p2p-Gnutella)",
                   gen_erdos_renyi(8192, 3 * 8192, rng)});
  suite.push_back({"er_mid_syn", "uniform random graphs",
                   gen_erdos_renyi(4096, 10 * 4096, rng)});
  suite.push_back({"citation_syn", "citation graphs (e.g. ca-HepTh)",
                   gen_rmat(13, 6 * 8192, 0.45, 0.22, 0.22, rng)});
  suite.push_back({"social_syn", "social/voting graphs (e.g. wiki-Vote)",
                   gen_rmat(12, 26 * 4096, 0.55, 0.18, 0.18, rng)});
  suite.push_back({"web_syn", "web/host graphs (heavy-tailed columns)",
                   gen_rmat(12, 40 * 4096, 0.60, 0.17, 0.12, rng)});
  // Merge-heavy: wide columns dominate; the FIFO re-sorting of the
  // baseline explodes while CAM matching stays one op per element.
  suite.push_back({"dense_blk_syn", "near-dense kernels (spectral blocks)",
                   gen_block_diagonal(2048, 64, rng)});
  suite.push_back({"contract_syn", "graph contraction / aggregation [4]",
                   gen_contraction(4096, 256, 16, 48, rng)});
  return suite;
}

}  // namespace limsynth::spgemm
