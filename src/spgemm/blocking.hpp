// Sub-block decomposition (Zhu et al. [12], used by the paper's chips):
// row indices are 10 bits, so A is split into 1024-row blocks, and B is
// processed in stripes of N=32 columns; each (row block, column stripe)
// task produces a 1024 x 32 tile of C. Access patterns become predictable,
// which is what lets the 3D-stacked DRAM stream blocks at full row-buffer
// bandwidth.
#pragma once

#include <vector>

#include "spgemm/sparse.hpp"

namespace limsynth::spgemm {

struct BlockingConfig {
  int row_block = 1024;  // rows of A per block (10-bit CAM index)
  int col_stripe = 32;   // columns of B per stripe (horizontal CAM count)
};

struct BlockTask {
  int row_block_index = 0;  // which 1024-row slice of A / C
  int col_stripe_index = 0; // which 32-column slice of B / C
  int row_begin = 0, row_end = 0;
  int col_begin = 0, col_end = 0;
};

/// Enumerates all (row block x column stripe) tasks for C = A * B.
std::vector<BlockTask> make_block_tasks(const SparseMatrix& a,
                                        const SparseMatrix& b,
                                        const BlockingConfig& config);

/// Nonzeros of A restricted to a row block, as per-column slices
/// (row indices rebased to the block: 0..row_block).
struct BlockedColumns {
  int row_begin = 0;
  /// entries[k] = entries of A(:, k) with row in [row_begin, row_end),
  /// rebased; only columns listed in `nonempty` have entries.
  std::vector<std::vector<Entry>> entries;
};
BlockedColumns slice_rows(const SparseMatrix& a, int row_begin, int row_end);

}  // namespace limsynth::spgemm
