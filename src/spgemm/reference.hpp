// Reference SpGEMM (Gustavson's column-wise algorithm with a dense
// sparse-accumulator), used as the functional golden model both
// accelerator simulators must match.
#pragma once

#include "spgemm/sparse.hpp"

namespace limsynth::spgemm {

/// C = A * B.
SparseMatrix multiply_reference(const SparseMatrix& a, const SparseMatrix& b);

}  // namespace limsynth::spgemm
