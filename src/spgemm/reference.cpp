#include "spgemm/reference.hpp"

#include <tuple>

#include "util/error.hpp"

namespace limsynth::spgemm {

SparseMatrix multiply_reference(const SparseMatrix& a, const SparseMatrix& b) {
  LIMS_CHECK(a.cols() == b.rows());
  std::vector<double> acc(static_cast<std::size_t>(a.rows()), 0.0);
  std::vector<int> marker(static_cast<std::size_t>(a.rows()), -1);
  std::vector<std::tuple<int, int, double>> trips;

  for (int j = 0; j < b.cols(); ++j) {
    std::vector<int> touched;
    for (int kb = b.col_begin(j); kb < b.col_end(j); ++kb) {
      const int k = b.row_index(kb);
      const double bv = b.value(kb);
      for (int ka = a.col_begin(k); ka < a.col_end(k); ++ka) {
        const int i = a.row_index(ka);
        if (marker[static_cast<std::size_t>(i)] != j) {
          marker[static_cast<std::size_t>(i)] = j;
          acc[static_cast<std::size_t>(i)] = 0.0;
          touched.push_back(i);
        }
        acc[static_cast<std::size_t>(i)] += a.value(ka) * bv;
      }
    }
    for (int i : touched)
      trips.emplace_back(i, j, acc[static_cast<std::size_t>(i)]);
  }
  return SparseMatrix::from_triplets(a.rows(), b.cols(), std::move(trips));
}

}  // namespace limsynth::spgemm
