#include "spgemm/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "util/error.hpp"

namespace limsynth::spgemm {

SparseMatrix::SparseMatrix(int rows, int cols) : rows_(rows), cols_(cols) {
  LIMS_CHECK(rows >= 0 && cols >= 0);
  col_ptr_.assign(static_cast<std::size_t>(cols) + 1, 0);
}

SparseMatrix SparseMatrix::from_triplets(
    int rows, int cols, std::vector<std::tuple<int, int, double>> triplets) {
  for (const auto& [r, c, v] : triplets) {
    LIMS_CHECK_MSG(r >= 0 && r < rows && c >= 0 && c < cols,
                   "triplet (" << r << "," << c << ") out of bounds");
    (void)v;
  }
  // Sort by (col, row) and sum duplicates.
  std::sort(triplets.begin(), triplets.end(), [](const auto& a, const auto& b) {
    return std::tie(std::get<1>(a), std::get<0>(a)) <
           std::tie(std::get<1>(b), std::get<0>(b));
  });
  SparseMatrix m(rows, cols);
  m.row_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  std::size_t i = 0;
  for (int col = 0; col < cols; ++col) {
    m.col_ptr_[static_cast<std::size_t>(col)] =
        static_cast<int>(m.row_idx_.size());
    while (i < triplets.size() && std::get<1>(triplets[i]) == col) {
      const int row = std::get<0>(triplets[i]);
      double v = 0.0;
      while (i < triplets.size() && std::get<1>(triplets[i]) == col &&
             std::get<0>(triplets[i]) == row) {
        v += std::get<2>(triplets[i]);
        ++i;
      }
      m.row_idx_.push_back(row);
      m.values_.push_back(v);
    }
  }
  m.col_ptr_[static_cast<std::size_t>(cols)] =
      static_cast<int>(m.row_idx_.size());
  return m;
}

std::vector<Entry> SparseMatrix::column(int col) const {
  LIMS_CHECK(col >= 0 && col < cols_);
  std::vector<Entry> out;
  out.reserve(static_cast<std::size_t>(col_nnz(col)));
  for (int k = col_begin(col); k < col_end(col); ++k)
    out.push_back({row_index(k), value(k)});
  return out;
}

double SparseMatrix::density() const {
  if (rows_ == 0 || cols_ == 0) return 0.0;
  return static_cast<double>(nnz()) /
         (static_cast<double>(rows_) * static_cast<double>(cols_));
}

double SparseMatrix::avg_col_nnz() const {
  if (cols_ == 0) return 0.0;
  return static_cast<double>(nnz()) / static_cast<double>(cols_);
}

int SparseMatrix::max_col_nnz() const {
  int best = 0;
  for (int c = 0; c < cols_; ++c) best = std::max(best, col_nnz(c));
  return best;
}

bool SparseMatrix::approx_equal(const SparseMatrix& other,
                                double rel_tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_ || nnz() != other.nnz())
    return false;
  if (col_ptr_ != other.col_ptr_ || row_idx_ != other.row_idx_) return false;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    const double a = values_[i], b = other.values_[i];
    const double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
    if (std::fabs(a - b) > rel_tol * scale) return false;
  }
  return true;
}

std::int64_t SparseMatrix::flops_with(const SparseMatrix& other) const {
  LIMS_CHECK(cols_ == other.rows_);
  // For C = this * other: each nonzero other(k, j) multiplies column k of
  // this, so flops = sum over nonzeros of |this(:, k)|.
  std::vector<std::int64_t> col_sizes(static_cast<std::size_t>(cols_));
  for (int c = 0; c < cols_; ++c)
    col_sizes[static_cast<std::size_t>(c)] = col_nnz(c);
  std::int64_t total = 0;
  for (int j = 0; j < other.cols_; ++j)
    for (int k = other.col_begin(j); k < other.col_end(j); ++k)
      total += col_sizes[static_cast<std::size_t>(other.row_index(k))];
  return total;
}

}  // namespace limsynth::spgemm
