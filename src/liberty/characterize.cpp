#include "liberty/characterize.hpp"

#include "circuit/circuit.hpp"
#include "circuit/transient.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace limsynth::liberty {

namespace {

LibCell shell_for(const tech::StdCell& cell) {
  LibCell out;
  out.name = cell.name;
  out.area = cell.area();
  out.width = cell.width;
  out.height = cell.height;
  out.leakage = cell.leakage;
  out.sequential = cell.is_sequential();
  if (out.sequential) out.clock_pin = "CK";
  for (int i = 0; i < cell.num_inputs(); ++i) {
    PinModel pin;
    pin.name = input_pin_name(cell, i);
    pin.cap = cell.input_cap;
    out.inputs.push_back(pin);
  }
  if (out.sequential) {
    out.inputs.push_back(PinModel{"CK", cell.clock_cap, true});
  }
  if (cell.func != tech::CellFunc::kClkGate) {
    out.outputs.push_back(
        PinModel{out.sequential ? "Q" : "Y", 0.0, false});
  } else {
    out.outputs.push_back(PinModel{"GCK", 0.0, true});
  }
  return out;
}

}  // namespace

std::string input_pin_name(const tech::StdCell& cell, int i) {
  if (cell.is_sequential()) {
    if (i == 0) return "D";
    if (i == 1) return "EN";
  }
  static const char* kNames[] = {"A", "B", "C", "D"};
  LIMS_CHECK(i >= 0 && i < 4);
  return kNames[i];
}

LibCell characterize_analytic(const tech::StdCell& cell,
                              const tech::Process& process) {
  LibCell out = shell_for(cell);
  const auto slews = default_slew_axis();
  const auto loads = default_load_axis();
  const double vdd = process.vdd;

  auto delay_fn = [&](double slew, double load) {
    return cell.delay(load, slew);
  };
  auto slew_fn = [&](double /*slew*/, double load) {
    return cell.output_slew(load);
  };
  auto energy_fn = [&](double /*slew*/, double load) {
    // Per output transition: half of the full switching-pair energy.
    return 0.5 * cell.switch_energy(load, vdd);
  };

  const std::string out_pin = out.outputs.front().name;
  if (cell.is_sequential()) {
    TimingArc arc;
    arc.from = "CK";
    arc.to = out_pin;
    arc.delay = Lut2D::from_function(slews, loads, [&](double s, double l) {
      return cell.clk_to_q + delay_fn(s, l);
    });
    arc.out_slew = Lut2D::from_function(slews, loads, slew_fn);
    arc.energy = Lut2D::from_function(slews, loads, energy_fn);
    out.arcs.push_back(std::move(arc));
    for (const auto& pin : out.inputs) {
      if (pin.is_clock) continue;
      out.constraints.push_back(Constraint{pin.name, cell.setup, cell.hold});
    }
  } else if (cell.num_inputs() > 0) {
    for (const auto& pin : out.inputs) {
      TimingArc arc;
      arc.from = pin.name;
      arc.to = out_pin;
      arc.delay = Lut2D::from_function(slews, loads, delay_fn);
      arc.out_slew = Lut2D::from_function(slews, loads, slew_fn);
      arc.energy = Lut2D::from_function(slews, loads, energy_fn);
      out.arcs.push_back(std::move(arc));
    }
  }
  return out;
}

namespace {

/// Builds the transistor topology for simple gates and returns in/out nodes.
struct GateCircuit {
  circuit::Circuit ckt;
  circuit::NodeId in;    // the switching input
  circuit::NodeId out;
};

GateCircuit build_gate(const tech::StdCell& cell, const tech::Process& process) {
  GateCircuit g{circuit::Circuit(process), 0, 0};
  auto& ckt = g.ckt;
  g.in = ckt.add_node("in");
  g.out = ckt.add_node("out");
  const double wn = process.wn_unit * cell.drive;
  const double wp = wn * process.beta;
  const double rn = process.r_nmos;
  const double rp = process.r_pmos;

  switch (cell.func) {
    case tech::CellFunc::kInv: {
      ckt.add_device(circuit::DeviceType::kNmos, g.in, g.out, ckt.gnd(), rn / wn);
      ckt.add_device(circuit::DeviceType::kPmos, g.in, g.out, ckt.vdd(), rp / wp);
      ckt.add_cap(g.out, (wn + wp) * process.c_diff);
      break;
    }
    case tech::CellFunc::kNand2: {
      // Series NMOS (2x width each to match unit drive), parallel PMOS.
      const circuit::NodeId mid = ckt.add_node("mid");
      const circuit::NodeId b = ckt.add_node("b");
      ckt.add_pwl(b, {{0.0, process.vdd}});  // other input held high
      ckt.add_device(circuit::DeviceType::kNmos, g.in, g.out, mid, rn / (2 * wn));
      ckt.add_device(circuit::DeviceType::kNmos, b, mid, ckt.gnd(), rn / (2 * wn));
      ckt.add_device(circuit::DeviceType::kPmos, g.in, g.out, ckt.vdd(), rp / wp);
      ckt.add_device(circuit::DeviceType::kPmos, b, g.out, ckt.vdd(), rp / wp);
      ckt.add_cap(g.out, (2 * wn + 2 * wp) * process.c_diff);
      ckt.add_cap(mid, 2 * wn * process.c_diff);
      break;
    }
    case tech::CellFunc::kNor2: {
      const circuit::NodeId mid = ckt.add_node("mid");
      const circuit::NodeId b = ckt.add_node("b");
      ckt.add_pwl(b, {{0.0, 0.0}});  // other input held low
      ckt.add_device(circuit::DeviceType::kNmos, g.in, g.out, ckt.gnd(), rn / wn);
      ckt.add_device(circuit::DeviceType::kNmos, b, g.out, ckt.gnd(), rn / wn);
      ckt.add_device(circuit::DeviceType::kPmos, g.in, g.out, mid, rp / (2 * wp));
      ckt.add_device(circuit::DeviceType::kPmos, b, mid, ckt.vdd(), rp / (2 * wp));
      ckt.add_cap(g.out, (2 * wn + 2 * wp) * process.c_diff);
      ckt.add_cap(mid, 2 * wp * process.c_diff);
      break;
    }
    default:
      throw Error("characterize_golden: unsupported function " +
                  std::string(tech::cell_func_name(cell.func)));
  }
  return g;
}

}  // namespace

LibCell characterize_golden(const tech::StdCell& cell,
                            const tech::Process& process,
                            CharacterizeStats* stats) {
  DIAG_CONTEXT("golden characterization of " + cell.name);
  // An unsupported topology is a structural property of the cell, not a
  // sick grid point: reject it up front instead of degrading every point.
  if (cell.func != tech::CellFunc::kInv && cell.func != tech::CellFunc::kNand2 &&
      cell.func != tech::CellFunc::kNor2)
    LIMS_FAIL(ErrorCode::kInvalidConfig,
              "characterize_golden: unsupported function "
                  << tech::cell_func_name(cell.func));
  LibCell out = shell_for(cell);
  const auto slews = default_slew_axis();
  const auto loads = default_load_axis();
  const double vdd = process.vdd;
  CharacterizeStats local_stats;
  if (!stats) stats = &local_stats;

  // Simulates one (slew, load) grid point; throws on any sick simulation
  // (the caller degrades the point to the analytic model).
  struct PointValues {
    double delay, oslew, energy;
  };
  auto simulate_point = [&](double slew, double load) -> PointValues {
    GateCircuit g = build_gate(cell, process);
    g.ckt.add_cap(g.out, load);
    // Rising input -> falling output (all supported gates invert).
    const double t0 = 100e-12;
    g.ckt.add_ramp_input(g.in, t0, slew, true);
    circuit::TransientConfig cfg;
    cfg.t_stop = t0 + 20 * slew + 60 * process.tau() +
                 40.0 * process.r_unit() * load / cell.drive;
    cfg.waveform_stride = 1;
    const auto res = circuit::simulate(g.ckt, cfg);
    const double d =
        circuit::measure_delay(res, g.ckt, g.in, true, g.out, false);
    if (d <= 0.0)
      LIMS_FAIL(ErrorCode::kNumericalFault,
                "golden characterization did not switch for " << cell.name);
    const double t80 = res.cross_time(g.out, 0.8, false);
    const double t20 = res.cross_time(g.out, 0.2, false);

    // Energy of the opposite (charging) transition: rerun with a falling
    // input so the PMOS network charges the load from the rail.
    GateCircuit g2 = build_gate(cell, process);
    g2.ckt.add_cap(g2.out, load);
    g2.ckt.add_ramp_input(g2.in, t0, slew, false);
    circuit::TransientConfig cfg2 = cfg;
    cfg2.record_waveforms = false;
    const auto res2 = circuit::simulate(g2.ckt, cfg2);
    // Per-transition energy convention: half the rise energy (the fall
    // dissipates the stored half), matching the analytic tables.
    return {d, (t20 - t80) / 0.6, 0.5 * res2.energy()};
  };

  std::vector<double> delays, oslews, energies;
  delays.reserve(slews.size() * loads.size());
  for (double slew : slews) {
    for (double load : loads) {
      ++stats->grid_points;
      PointValues v{};
      try {
        v = simulate_point(slew, load);
      } catch (const Error& e) {
        // Retry-with-fallback: the point degrades to the analytic model
        // (flagged in stats) instead of aborting library generation.
        v = {cell.delay(load, slew), cell.output_slew(load),
             0.5 * cell.switch_energy(load, vdd)};
        ++stats->fallback_points;
        stats->notes.push_back(strformat("slew %.3e load %.3e: %s", slew,
                                         load, e.what()));
      }
      delays.push_back(v.delay);
      oslews.push_back(v.oslew);
      energies.push_back(v.energy);
    }
  }

  const std::string out_pin = out.outputs.front().name;
  for (const auto& pin : out.inputs) {
    TimingArc arc;
    arc.from = pin.name;
    arc.to = out_pin;
    arc.delay = Lut2D(slews, loads, delays);
    arc.out_slew = Lut2D(slews, loads, oslews);
    arc.energy = Lut2D(slews, loads, energies);
    out.arcs.push_back(std::move(arc));
  }
  return out;
}

Library characterize_stdcell_library(const tech::StdCellLib& lib) {
  Library out("stdcells_" + lib.process().name);
  for (const auto& cell : lib.cells())
    out.add(characterize_analytic(cell, lib.process()));
  return out;
}

}  // namespace limsynth::liberty
