#include "liberty/lut.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace limsynth::liberty {

Lut2D::Lut2D(std::vector<double> slew_axis, std::vector<double> load_axis,
             std::vector<double> values)
    : slew_axis_(std::move(slew_axis)),
      load_axis_(std::move(load_axis)),
      values_(std::move(values)) {
  LIMS_CHECK(slew_axis_.size() >= 2 && load_axis_.size() >= 2);
  LIMS_CHECK(values_.size() == slew_axis_.size() * load_axis_.size());
  LIMS_CHECK(std::is_sorted(slew_axis_.begin(), slew_axis_.end()));
  LIMS_CHECK(std::is_sorted(load_axis_.begin(), load_axis_.end()));
}

std::size_t Lut2D::cell(const std::vector<double>& axis, double x) {
  // lower_bound gives first element >= x.
  const auto it = std::lower_bound(axis.begin(), axis.end(), x);
  std::size_t i = (it == axis.begin())
                      ? 0
                      : static_cast<std::size_t>(it - axis.begin()) - 1;
  return std::min(i, axis.size() - 2);
}

double Lut2D::lookup(double slew, double load) const {
  LIMS_CHECK(!empty());
  const std::size_t si = cell(slew_axis_, slew);
  const std::size_t li = cell(load_axis_, load);
  const double s0 = slew_axis_[si], s1 = slew_axis_[si + 1];
  const double l0 = load_axis_[li], l1 = load_axis_[li + 1];
  const double fs = (slew - s0) / (s1 - s0);  // may be <0 or >1: extrapolates
  const double fl = (load - l0) / (l1 - l0);
  const double v00 = at(si, li), v01 = at(si, li + 1);
  const double v10 = at(si + 1, li), v11 = at(si + 1, li + 1);
  const double lo = v00 + (v01 - v00) * fl;
  const double hi = v10 + (v11 - v10) * fl;
  return lo + (hi - lo) * fs;
}

LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y) {
  LIMS_CHECK(x.size() == y.size() && x.size() >= 2);
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  LIMS_CHECK_MSG(std::abs(denom) > 1e-300, "degenerate x axis in fit");
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  double ss_res = 0.0, ss_tot = 0.0;
  const double ybar = sy / n;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - fit(x[i]);
    ss_res += e * e;
    ss_tot += (y[i] - ybar) * (y[i] - ybar);
  }
  fit.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace limsynth::liberty
