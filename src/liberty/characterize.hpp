// Library characterization.
//
// Two characterization paths produce the same LibCell shape:
//
//  * characterize_analytic — instantaneous, from the cell's logical-effort
//    parameters. This backs the "dynamically generated library ... within
//    seconds" property the paper's DSE depends on.
//  * characterize_golden — drives the switch-level transient simulator on a
//    transistor topology of the cell (INV/NAND2/NOR2 supported) over the
//    slew x load grid. Used to validate the analytic tables, mirroring the
//    paper's Table 1 tool-vs-SPICE comparison at the cell level.
//
// Pin conventions: combinational inputs A,B,C,D -> output Y; sequential
// D(,EN) -> Q with clock CK.
#pragma once

#include "liberty/library.hpp"
#include "tech/stdcell.hpp"

namespace limsynth::liberty {

/// Analytic NLDM tables from logical-effort parameters.
LibCell characterize_analytic(const tech::StdCell& cell,
                              const tech::Process& process);

/// Per-run accounting for characterize_golden: how many LUT grid points
/// were simulated and how many degraded to the analytic fallback.
struct CharacterizeStats {
  int grid_points = 0;
  int fallback_points = 0;
  /// One human-readable note per fallback point: which (slew, load) and why.
  std::vector<std::string> notes;

  bool clean() const { return fallback_points == 0; }
};

/// Golden (transient-simulated) tables. Supports kInv, kNand2, kNor2;
/// throws for other functions. One sick LUT point (non-convergence,
/// numerical fault, no output switch) degrades to the analytic value for
/// that point and is recorded in `stats` instead of aborting library
/// generation.
LibCell characterize_golden(const tech::StdCell& cell,
                            const tech::Process& process,
                            CharacterizeStats* stats = nullptr);

/// Characterizes an entire standard-cell library analytically.
Library characterize_stdcell_library(const tech::StdCellLib& lib);

/// Conventional input pin name for position `i` (A, B, C, D...).
std::string input_pin_name(const tech::StdCell& cell, int i);

}  // namespace limsynth::liberty
