#include "liberty/library.hpp"

#include "util/error.hpp"
#include "util/units.hpp"

namespace limsynth::liberty {

const PinModel* LibCell::find_input(const std::string& pin) const {
  for (const auto& p : inputs)
    if (p.name == pin) return &p;
  return nullptr;
}

const PinModel* LibCell::find_output(const std::string& pin) const {
  for (const auto& p : outputs)
    if (p.name == pin) return &p;
  return nullptr;
}

const TimingArc* LibCell::find_arc(const std::string& from,
                                   const std::string& to) const {
  for (const auto& a : arcs)
    if (a.from == from && a.to == to) return &a;
  return nullptr;
}

const Constraint* LibCell::find_constraint(const std::string& pin) const {
  for (const auto& c : constraints)
    if (c.pin == pin) return &c;
  return nullptr;
}

void Library::add(LibCell cell) {
  LIMS_CHECK_MSG(index_.find(cell.name) == index_.end(),
                 "duplicate cell " << cell.name << " in library " << name_);
  index_[cell.name] = cells_.size();
  cells_.push_back(std::move(cell));
}

const LibCell& Library::cell(const std::string& name) const {
  const LibCell* c = find(name);
  LIMS_CHECK_MSG(c != nullptr, "no cell " << name << " in library " << name_);
  return *c;
}

const LibCell* Library::find(const std::string& name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? nullptr : &cells_[it->second];
}

std::size_t Library::index_of(const std::string& name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? npos : it->second;
}

void Library::merge(const Library& other) {
  cells_.reserve(cells_.size() + other.cells().size());
  index_.reserve(index_.size() + other.cells().size());
  for (const auto& c : other.cells()) add(c);
}

std::vector<double> default_slew_axis() {
  using limsynth::units::ps;
  return {5 * ps, 20 * ps, 50 * ps, 120 * ps, 300 * ps};
}

std::vector<double> default_load_axis() {
  using limsynth::units::fF;
  return {0.5 * fF, 2 * fF, 6 * fF, 15 * fF, 40 * fF, 100 * fF};
}

}  // namespace limsynth::liberty
