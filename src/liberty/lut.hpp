// NLDM-style 2D lookup tables (paper §3: "look-up table (LUT) models based
// on bilinear interpolation and curve fitting for delay and energy as a
// function of fanout and slew rate").
#pragma once

#include <vector>

namespace limsynth::liberty {

/// Table indexed by (input slew, output load); bilinear interpolation
/// inside the grid, linear extrapolation from the edge cells outside it.
class Lut2D {
 public:
  Lut2D() = default;
  Lut2D(std::vector<double> slew_axis, std::vector<double> load_axis,
        std::vector<double> values /* row-major [slew][load] */);

  double lookup(double slew, double load) const;

  bool empty() const { return values_.empty(); }
  const std::vector<double>& slew_axis() const { return slew_axis_; }
  const std::vector<double>& load_axis() const { return load_axis_; }
  const std::vector<double>& values() const { return values_; }

  double at(std::size_t si, std::size_t li) const {
    return values_[si * load_axis_.size() + li];
  }

  /// Builds a LUT by evaluating `fn(slew, load)` on the grid.
  template <typename Fn>
  static Lut2D from_function(std::vector<double> slew_axis,
                             std::vector<double> load_axis, Fn&& fn) {
    std::vector<double> values;
    values.reserve(slew_axis.size() * load_axis.size());
    for (double s : slew_axis)
      for (double l : load_axis) values.push_back(fn(s, l));
    return Lut2D(std::move(slew_axis), std::move(load_axis), std::move(values));
  }

 private:
  /// Finds the interpolation cell for `x` on `axis`: returns the lower
  /// index i with axis[i] <= x < axis[i+1], clamped to [0, n-2].
  static std::size_t cell(const std::vector<double>& axis, double x);

  std::vector<double> slew_axis_;
  std::vector<double> load_axis_;
  std::vector<double> values_;
};

/// Least-squares fit of samples (x, y) to y = a + b*x. Returns {a, b}.
/// Used to curve-fit characterization sweeps before tabulation.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;

  double operator()(double x) const { return intercept + slope * x; }
};
LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace limsynth::liberty
