#include "liberty/writer.hpp"

#include <cmath>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace limsynth::liberty {

namespace {

// Unit scales used in the text format.
constexpr double kTime = 1e-9;    // ns
constexpr double kCap = 1e-12;    // pF
constexpr double kEnergy = 1e-12; // pJ
constexpr double kArea = 1e-12;   // um^2
constexpr double kLeak = 1e-9;    // nW

void write_values(std::ostream& os, const char* key,
                  const std::vector<double>& v, double scale,
                  const char* indent) {
  os << indent << key << " (\"";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) os << ", ";
    os << v[i] / scale;
  }
  os << "\");\n";
}

void write_lut(std::ostream& os, const char* group, const Lut2D& lut,
               double value_scale) {
  os << "        " << group << " (lut_5x6) {\n";
  write_values(os, "index_1", lut.slew_axis(), kTime, "          ");
  write_values(os, "index_2", lut.load_axis(), kCap, "          ");
  write_values(os, "values", lut.values(), value_scale, "          ");
  os << "        }\n";
}

}  // namespace

void write_liberty(const Library& lib, std::ostream& os) {
  os << "/* limsynth generated library. units: time ns, cap pF, energy pJ,"
        " area um2, leakage nW */\n";
  os << "library (" << lib.name() << ") {\n";
  for (const auto& cell : lib.cells()) {
    os << "  cell (" << cell.name << ") {\n";
    os << "    area : " << cell.area / kArea << ";\n";
    os << "    cell_leakage_power : " << cell.leakage / kLeak << ";\n";
    if (cell.is_macro) os << "    is_macro : true;\n";
    if (cell.sequential) os << "    clock_pin : " << cell.clock_pin << ";\n";
    if (cell.clock_energy > 0.0)
      os << "    clock_energy : " << cell.clock_energy / kEnergy << ";\n";
    for (const auto& pin : cell.inputs) {
      os << "    pin (" << pin.name << ") {\n";
      os << "      direction : input;\n";
      os << "      capacitance : " << pin.cap / kCap << ";\n";
      if (pin.is_clock) os << "      clock : true;\n";
      const Constraint* con = cell.find_constraint(pin.name);
      if (con) {
        os << "      setup : " << con->setup / kTime << ";\n";
        os << "      hold : " << con->hold / kTime << ";\n";
      }
      os << "    }\n";
    }
    for (const auto& pin : cell.outputs) {
      os << "    pin (" << pin.name << ") {\n";
      os << "      direction : output;\n";
      for (const auto& arc : cell.arcs) {
        if (arc.to != pin.name) continue;
        os << "      timing () {\n";
        os << "        related_pin : \"" << arc.from << "\";\n";
        write_lut(os, "cell_delay", arc.delay, kTime);
        write_lut(os, "output_slew", arc.out_slew, kTime);
        write_lut(os, "energy", arc.energy, kEnergy);
        os << "      }\n";
      }
      os << "    }\n";
    }
    os << "  }\n";
  }
  os << "}\n";
}

std::string to_liberty_string(const Library& lib) {
  std::ostringstream os;
  write_liberty(lib, os);
  return os.str();
}

// ------------------------------------------------------------------ parser

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Library parse() {
    skip_ws();
    expect_word("library");
    std::string name = parse_parens_token();
    expect_char('{');
    Library lib(name);
    skip_ws();
    while (peek() != '}') {
      expect_word("cell");
      lib.add(parse_cell());
      skip_ws();
    }
    return lib;
  }

 private:
  LibCell parse_cell() {
    LibCell cell;
    cell.name = parse_parens_token();
    expect_char('{');
    skip_ws();
    while (peek() != '}') {
      const std::string word = parse_word();
      if (word == "pin") {
        parse_pin(cell);
      } else {
        // attribute : value ;
        expect_char(':');
        const std::string value = parse_until(';');
        expect_char(';');
        if (word == "area") cell.area = to_double(value) * kArea;
        else if (word == "cell_leakage_power") cell.leakage = to_double(value) * kLeak;
        else if (word == "is_macro") cell.is_macro = (trim(value) == "true");
        else if (word == "clock_pin") { cell.sequential = true; cell.clock_pin = trim(value); }
        else if (word == "clock_energy") cell.clock_energy = to_double(value) * kEnergy;
        else fail("unknown cell attribute '" + word + "'");
      }
      skip_ws();
    }
    expect_char('}');
    return cell;
  }

  void parse_pin(LibCell& cell) {
    PinModel pin;
    pin.name = parse_parens_token();
    expect_char('{');
    skip_ws();
    bool is_input = false;
    double setup = -1.0, hold = -1.0;
    std::vector<TimingArc> arcs;
    while (peek() != '}') {
      const std::string word = parse_word();
      if (word == "timing") {
        expect_char('(');
        expect_char(')');
        arcs.push_back(parse_timing(pin.name));
      } else {
        expect_char(':');
        const std::string value = parse_until(';');
        expect_char(';');
        if (word == "direction") is_input = (trim(value) == "input");
        else if (word == "capacitance") pin.cap = to_double(value) * kCap;
        else if (word == "clock") pin.is_clock = (trim(value) == "true");
        else if (word == "setup") setup = to_double(value) * kTime;
        else if (word == "hold") hold = to_double(value) * kTime;
        else fail("unknown pin attribute '" + word + "'");
      }
      skip_ws();
    }
    expect_char('}');
    if (is_input) {
      cell.inputs.push_back(pin);
      if (setup >= 0.0) cell.constraints.push_back({pin.name, setup, hold});
    } else {
      cell.outputs.push_back(pin);
      for (auto& a : arcs) cell.arcs.push_back(std::move(a));
    }
  }

  TimingArc parse_timing(const std::string& out_pin) {
    TimingArc arc;
    arc.to = out_pin;
    expect_char('{');
    skip_ws();
    while (peek() != '}') {
      const std::string word = parse_word();
      if (word == "related_pin") {
        expect_char(':');
        const std::string value = parse_until(';');
        expect_char(';');
        arc.from = unquote(trim(value));
      } else if (word == "cell_delay" || word == "output_slew" ||
                 word == "energy") {
        parse_parens_token();  // template name, ignored
        const Lut2D lut = parse_lut(word == "energy" ? kEnergy : kTime);
        if (word == "cell_delay") arc.delay = lut;
        else if (word == "output_slew") arc.out_slew = lut;
        else arc.energy = lut;
      } else {
        fail("unknown timing attribute '" + word + "'");
      }
      skip_ws();
    }
    expect_char('}');
    return arc;
  }

  Lut2D parse_lut(double value_scale) {
    expect_char('{');
    std::vector<double> i1, i2, values;
    skip_ws();
    while (peek() != '}') {
      const std::string word = parse_word();
      expect_char('(');
      skip_ws();
      expect_char('"');
      const std::string body = parse_until('"');
      expect_char('"');
      expect_char(')');
      expect_char(';');
      std::vector<double> nums = split_numbers(body);
      if (word == "index_1") {
        for (double& v : nums) v *= kTime;
        i1 = std::move(nums);
      } else if (word == "index_2") {
        for (double& v : nums) v *= kCap;
        i2 = std::move(nums);
      } else if (word == "values") {
        for (double& v : nums) v *= value_scale;
        values = std::move(nums);
      } else {
        fail("unknown lut key '" + word + "'");
      }
      skip_ws();
    }
    expect_char('}');
    return Lut2D(std::move(i1), std::move(i2), std::move(values));
  }

  // --- lexing helpers ---
  static std::string trim(const std::string& s) {
    std::size_t a = s.find_first_not_of(" \t\n\r");
    std::size_t b = s.find_last_not_of(" \t\n\r");
    if (a == std::string::npos) return "";
    return s.substr(a, b - a + 1);
  }
  static std::string unquote(const std::string& s) {
    if (s.size() >= 2 && s.front() == '"' && s.back() == '"')
      return s.substr(1, s.size() - 2);
    return s;
  }
  static double to_double(const std::string& s) {
    try {
      return std::stod(trim(s));
    } catch (const std::exception&) {
      throw Error("liberty parse: bad number '" + s + "'");
    }
  }
  static std::vector<double> split_numbers(const std::string& s) {
    std::vector<double> out;
    std::string cur;
    for (char ch : s + ",") {
      if (ch == ',') {
        if (!trim(cur).empty()) out.push_back(to_double(cur));
        cur.clear();
      } else {
        cur += ch;
      }
    }
    return out;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char ch = text_[pos_];
      if (ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r') {
        if (ch == '\n') ++line_;
        ++pos_;
      } else if (ch == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '*') {
        const std::size_t end = text_.find("*/", pos_ + 2);
        LIMS_CHECK_MSG(end != std::string::npos, "unterminated comment");
        for (std::size_t i = pos_; i < end; ++i)
          if (text_[i] == '\n') ++line_;
        pos_ = end + 2;
      } else {
        break;
      }
    }
  }
  char peek() {
    LIMS_CHECK_MSG(pos_ < text_.size(), "liberty parse: unexpected EOF");
    return text_[pos_];
  }
  void expect_char(char ch) {
    skip_ws();
    if (peek() != ch)
      fail(std::string("expected '") + ch + "', found '" + peek() + "'");
    ++pos_;
  }
  std::string parse_word() {
    skip_ws();
    std::string out;
    while (pos_ < text_.size()) {
      const char ch = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(ch)) || ch == '_') {
        out += ch;
        ++pos_;
      } else {
        break;
      }
    }
    if (out.empty()) fail("expected identifier");
    return out;
  }
  void expect_word(const std::string& word) {
    const std::string got = parse_word();
    if (got != word) fail("expected '" + word + "', found '" + got + "'");
  }
  std::string parse_parens_token() {
    expect_char('(');
    const std::string tok = parse_until(')');
    expect_char(')');
    return trim(tok);
  }
  std::string parse_until(char stop) {
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != stop) {
      if (text_[pos_] == '\n') ++line_;
      out += text_[pos_++];
    }
    return out;
  }
  [[noreturn]] void fail(const std::string& msg) {
    throw Error("liberty parse error (line " + std::to_string(line_) + "): " + msg);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

Library parse_liberty(const std::string& text) { return Parser(text).parse(); }

}  // namespace limsynth::liberty
