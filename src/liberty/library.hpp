// Timing-library objects consumed by STA and power analysis — the role
// .lib files play in the paper's flow. Both standard cells and dynamically
// generated memory bricks are represented as LibCells ("bricks are
// integrated ... by library files at the gate netlist").
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "liberty/lut.hpp"

namespace limsynth::liberty {

struct PinModel {
  std::string name;
  double cap = 0.0;       // F
  bool is_clock = false;
};

/// One input->output timing arc with NLDM LUTs over (input slew, load).
struct TimingArc {
  std::string from;  // input pin name (or clock pin for sequential arcs)
  std::string to;    // output pin name
  Lut2D delay;       // s
  Lut2D out_slew;    // s
  /// Energy per output transition (J) as a function of (slew, load).
  Lut2D energy;
};

/// Setup/hold constraint on an input pin relative to the clock pin.
struct Constraint {
  std::string pin;
  double setup = 0.0;  // s
  double hold = 0.0;   // s
};

struct LibCell {
  std::string name;
  double area = 0.0;     // m^2
  double width = 0.0;    // m (0 = derive from area at placement)
  double height = 0.0;   // m
  double leakage = 0.0;  // W
  bool is_macro = false; // memory brick or other black-box macro
  bool sequential = false;
  std::string clock_pin;  // empty for combinational

  std::vector<PinModel> inputs;
  std::vector<PinModel> outputs;
  std::vector<TimingArc> arcs;
  std::vector<Constraint> constraints;

  /// Static energy per clock cycle even when idle (clock tree inside a
  /// macro, precharge). Zero for standard cells.
  double clock_energy = 0.0;

  const PinModel* find_input(const std::string& pin) const;
  const PinModel* find_output(const std::string& pin) const;
  const TimingArc* find_arc(const std::string& from, const std::string& to) const;
  const Constraint* find_constraint(const std::string& pin) const;
};

class Library {
 public:
  explicit Library(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds a cell; rejects duplicate names.
  void add(LibCell cell);

  const LibCell& cell(const std::string& name) const;
  const LibCell* find(const std::string& name) const;
  const std::vector<LibCell>& cells() const { return cells_; }

  /// Dense position of `name` in cells(), or npos when absent. BoundDesign
  /// uses these positions as LibCellIds.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t index_of(const std::string& name) const;

  /// Merges all cells of `other` into this library.
  void merge(const Library& other);

 private:
  std::string name_;
  std::vector<LibCell> cells_;
  std::unordered_map<std::string, std::size_t> index_;
};

/// Default characterization grid axes.
std::vector<double> default_slew_axis();
std::vector<double> default_load_axis();

}  // namespace limsynth::liberty
