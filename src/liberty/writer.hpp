// Liberty-style text serialization.
//
// The paper's flow hands generated brick models to commercial tools as
// .lib files; this writer emits a compatible-in-spirit subset (library /
// cell / pin / timing groups with index_1/index_2/values tables) and the
// reader parses it back, so generated libraries can be persisted and
// re-loaded across flow stages.
#pragma once

#include <iosfwd>
#include <string>

#include "liberty/library.hpp"

namespace limsynth::liberty {

/// Emits the library in a Liberty-like syntax. Units: time ns, cap pF,
/// energy pJ, area um^2, leakage nW (stated in the header comment of the
/// output).
void write_liberty(const Library& lib, std::ostream& os);
std::string to_liberty_string(const Library& lib);

/// Parses a library previously produced by write_liberty. This is not a
/// general Liberty parser; it accepts the writer's subset and throws
/// limsynth::Error with a line number on malformed input.
Library parse_liberty(const std::string& text);

}  // namespace limsynth::liberty
