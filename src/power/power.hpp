// Activity-based power analysis.
//
// Mirrors the paper's flow: switching activity comes from gate-level
// simulation (the Modelsim/.saif substitute — either the settle engine's
// functional toggles or the event-driven engine's glitch-aware record),
// wire capacitance from placement (.spef substitute), and per-transition
// energies from the NLDM energy tables — then PrimeTime-style summation
// gives dynamic + leakage power at a target frequency.
#pragma once

#include "liberty/library.hpp"
#include "netlist/activity.hpp"
#include "netlist/bound.hpp"
#include "netlist/netlist.hpp"
#include "netlist/sim.hpp"
#include "place/place.hpp"
#include "sta/sta.hpp"

namespace limsynth::power {

struct PowerOptions {
  double frequency = 500e6;  // Hz
  double vdd = 1.2;          // V, for clock-pin CV^2f
  const place::Floorplan* floorplan = nullptr;
  double prelayout_cap_per_sink = 1.0e-15;  // F when no floorplan
  /// Slew used for the energy-LUT lookups when no STA result is supplied
  /// (or for nets STA never reached). With `sta` set, each arc is looked
  /// up at the STA-propagated slew of its input net instead — the same
  /// slews the delay LUTs saw — so fast and slow corners of the same
  /// netlist stop sharing one energy point.
  double default_slew = 30e-12;  // s
  /// Optional STA result over the same netlist; enables per-net slews.
  const sta::StaResult* sta = nullptr;
};

struct PowerReport {
  double combinational = 0.0;  // W, gate internal + net switching
  double sequential = 0.0;     // W, flop internal + Q nets
  double clock_tree = 0.0;     // W, clock pin loads
  double macro = 0.0;          // W, brick access + clock energy
  double glitch = 0.0;         // W, hazard transitions (event engine only)
  double leakage = 0.0;        // W
  double total() const {
    return combinational + sequential + clock_tree + macro + glitch + leakage;
  }
  /// Energy per clock cycle (J) at the analysis frequency.
  double energy_per_cycle = 0.0;
};

/// Computes power from an engine-independent activity record over a bound
/// design (arc/pin lookups are slot-indexed, no string resolution). The
/// record must cover at least one cycle over the same netlist. Hazard
/// toggles (activity.glitch_toggles, produced by the event-driven engine)
/// are priced with the same NLDM arc energies as functional toggles and
/// land in PowerReport::glitch.
PowerReport analyze_power(const netlist::BoundDesign& bound,
                          const netlist::Activity& activity,
                          const PowerOptions& options = {});

/// Convenience: binds and analyzes. Callers running several analyses
/// should bind once and use the overload above.
PowerReport analyze_power(const netlist::Netlist& nl,
                          const liberty::Library& lib,
                          const netlist::Activity& activity,
                          const PowerOptions& options = {});

/// Convenience: snapshots activity from a settle-based simulation run
/// (glitch component is necessarily zero).
PowerReport analyze_power(const netlist::Netlist& nl,
                          const liberty::Library& lib,
                          const netlist::Simulator& sim,
                          const PowerOptions& options = {});
PowerReport analyze_power(const netlist::BoundDesign& bound,
                          const netlist::Simulator& sim,
                          const PowerOptions& options = {});

}  // namespace limsynth::power
