// Activity-based power analysis.
//
// Mirrors the paper's flow: switching activity comes from gate-level
// simulation (netlist::Simulator, the Modelsim/.saif substitute), wire
// capacitance from placement (.spef substitute), and per-transition
// energies from the NLDM energy tables — then PrimeTime-style summation
// gives dynamic + leakage power at a target frequency.
#pragma once

#include "liberty/library.hpp"
#include "netlist/netlist.hpp"
#include "netlist/sim.hpp"
#include "place/place.hpp"

namespace limsynth::power {

struct PowerOptions {
  double frequency = 500e6;  // Hz
  double vdd = 1.2;          // V, for clock-pin CV^2f
  const place::Floorplan* floorplan = nullptr;
  double prelayout_cap_per_sink = 1.0e-15;  // F when no floorplan
  double default_slew = 30e-12;             // s for LUT lookups
};

struct PowerReport {
  double combinational = 0.0;  // W, gate internal + net switching
  double sequential = 0.0;     // W, flop internal + Q nets
  double clock_tree = 0.0;     // W, clock pin loads
  double macro = 0.0;          // W, brick access + clock energy
  double leakage = 0.0;        // W
  double total() const {
    return combinational + sequential + clock_tree + macro + leakage;
  }
  /// Energy per clock cycle (J) at the analysis frequency.
  double energy_per_cycle = 0.0;
};

/// Computes power from recorded activity. `sim` must have been run for at
/// least one cycle over the same netlist.
PowerReport analyze_power(const netlist::Netlist& nl,
                          const liberty::Library& lib,
                          const netlist::Simulator& sim,
                          const PowerOptions& options = {});

}  // namespace limsynth::power
