#include "power/power.hpp"

#include "synth/synth.hpp"
#include "util/error.hpp"

namespace limsynth::power {

namespace {

using netlist::InstId;
using netlist::Netlist;
using netlist::NetId;
using synth::pin_base;

}  // namespace

PowerReport analyze_power(const Netlist& nl, const liberty::Library& lib,
                          const netlist::Simulator& sim,
                          const PowerOptions& opt) {
  LIMS_CHECK_MSG(sim.cycles() > 0, "run the simulator before power analysis");
  PowerReport rep;
  const double f = opt.frequency;
  const std::size_t n_nets = nl.nets().size();

  // Per-net total load (wire + sink pins), as in STA.
  std::vector<double> net_load(n_nets, 0.0);
  for (NetId net = 0; net < static_cast<NetId>(n_nets); ++net) {
    double pins = 0.0;
    for (const auto& sink : nl.sinks_of(net)) {
      const liberty::LibCell& cell = lib.cell(nl.instance(sink.inst).cell);
      const liberty::PinModel* pin = cell.find_input(pin_base(sink.pin));
      if (pin != nullptr) pins += pin->cap;
    }
    const double wire = opt.floorplan != nullptr
                            ? opt.floorplan->net(net).wire_cap
                            : opt.prelayout_cap_per_sink *
                                  static_cast<double>(nl.sinks_of(net).size());
    net_load[static_cast<std::size_t>(net)] = pins + wire;
  }

  const double cycles = static_cast<double>(sim.cycles());
  for (std::size_t i = 0; i < nl.instance_storage_size(); ++i) {
    const auto id = static_cast<InstId>(i);
    if (!nl.is_live(id)) continue;
    const auto& inst = nl.instance(id);
    const liberty::LibCell& cell = lib.cell(inst.cell);
    rep.leakage += cell.leakage;

    if (cell.is_macro) {
      // Brick: fixed energy per accessed cycle + output-arc energy below.
      const double access_rate =
          static_cast<double>(sim.macro_accesses(id)) / cycles;
      rep.macro += cell.clock_energy * access_rate * f;
    }

    // Clock pin loading (ideal clock network, vdd-rail powered):
    // one full swing pair per cycle -> C * Vdd^2 * f.
    for (const auto& pin : cell.inputs) {
      if (!pin.is_clock) continue;
      rep.clock_tree += pin.cap * opt.vdd * opt.vdd * f;
    }

    // Output switching: activity * per-transition arc energy.
    for (const auto& c : inst.conns) {
      if (!Netlist::is_output_pin(c.pin)) continue;
      const double act = sim.activity(c.net);  // toggles per cycle
      if (act <= 0.0) continue;
      const liberty::TimingArc* arc = nullptr;
      if (cell.sequential || cell.is_macro) {
        arc = cell.find_arc(cell.clock_pin.empty() ? "CK" : cell.clock_pin,
                            pin_base(c.pin));
      } else {
        for (const auto& in : inst.conns) {
          if (Netlist::is_output_pin(in.pin)) continue;
          arc = cell.find_arc(pin_base(in.pin), pin_base(c.pin));
          if (arc != nullptr) break;
        }
      }
      if (arc == nullptr) continue;
      const double e_per_toggle = arc->energy.lookup(
          opt.default_slew, net_load[static_cast<std::size_t>(c.net)]);
      const double watts = act * e_per_toggle * f;
      if (cell.is_macro) rep.macro += watts;
      else if (cell.sequential) rep.sequential += watts;
      else rep.combinational += watts;
    }
  }

  rep.energy_per_cycle = rep.total() / f;
  return rep;
}

}  // namespace limsynth::power
