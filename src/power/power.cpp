#include "power/power.hpp"

#include "sta/loads.hpp"
#include "util/error.hpp"

namespace limsynth::power {

namespace {

using netlist::BoundConn;
using netlist::BoundDesign;
using netlist::InstId;
using netlist::LibCellId;
using netlist::Netlist;
using netlist::NetId;

/// Slew for an arc lookup: the STA-propagated slew of the arc's input net
/// when available (the clock net carries sta::kClockSlew there), else the
/// configured default.
double arc_slew(const PowerOptions& opt, NetId from_net) {
  if (opt.sta != nullptr && from_net != netlist::kNoNet) {
    const auto n = static_cast<std::size_t>(from_net);
    if (n < opt.sta->net_slew.size() && opt.sta->net_arrival[n] >= 0.0)
      return opt.sta->net_slew[n];
  }
  return opt.default_slew;
}

}  // namespace

PowerReport analyze_power(const BoundDesign& bd, const netlist::Activity& act,
                          const PowerOptions& opt) {
  bd.check_fresh();
  const Netlist& nl = bd.netlist();
  LIMS_CHECK_MSG(act.cycles > 0, "run the simulator before power analysis");
  LIMS_CHECK_MSG(act.toggles.size() == nl.nets().size() &&
                     act.glitch_toggles.size() == nl.nets().size(),
                 "activity record does not match the netlist");
  PowerReport rep;
  const double f = opt.frequency;

  // Per-net total load (wire + sink pins), as in STA.
  sta::NetLoadOptions load_opt;
  load_opt.floorplan = opt.floorplan;
  load_opt.prelayout_cap_per_sink = opt.prelayout_cap_per_sink;
  const sta::NetLoads loads = compute_net_loads(bd, load_opt);

  const double cycles = static_cast<double>(act.cycles);
  for (std::size_t i = 0; i < bd.instance_count(); ++i) {
    const auto id = static_cast<InstId>(i);
    if (!bd.is_live(id)) continue;
    const LibCellId cid = bd.cell_id(id);
    const liberty::LibCell& cell = bd.lib_cell(cid);
    const auto conns = bd.conns(id);
    rep.leakage += cell.leakage;

    if (cell.is_macro) {
      // Brick: fixed energy per accessed cycle + output-arc energy below.
      const double access_rate =
          static_cast<double>(act.macro_access_count(id)) / cycles;
      rep.macro += cell.clock_energy * access_rate * f;
    }

    // Clock pin loading (ideal clock network, vdd-rail powered):
    // one full swing pair per cycle -> C * Vdd^2 * f.
    for (const auto& pin : cell.inputs) {
      if (!pin.is_clock) continue;
      rep.clock_tree += pin.cap * opt.vdd * opt.vdd * f;
    }

    const bool launch_from_clock = cell.sequential || cell.is_macro;
    // Clock input net of this instance (for the arc-slew lookup).
    NetId clock_net = netlist::kNoNet;
    if (launch_from_clock) {
      for (const BoundConn& c : conns) {
        if (c.is_clock) {
          clock_net = c.net;
          break;
        }
      }
    }

    // Output switching: activity * per-transition arc energy.
    for (const BoundConn& c : conns) {
      if (!c.is_output) continue;
      const double total_rate = act.rate(c.net);  // toggles per cycle
      if (total_rate <= 0.0) continue;
      const liberty::TimingArc* arc = nullptr;
      NetId from_net = netlist::kNoNet;
      if (launch_from_clock) {
        arc = bd.clock_arc(cid, c.slot);
        from_net = clock_net;
      } else {
        // Representative arc: the first input (in conn order) with a
        // timing arc to this output.
        for (const BoundConn& in : conns) {
          if (in.is_output) continue;
          arc = bd.arc(cid, in.slot, c.slot);
          if (arc != nullptr) {
            from_net = in.net;
            break;
          }
        }
      }
      if (arc == nullptr) continue;
      const double e_per_toggle =
          arc->energy.lookup(arc_slew(opt, from_net),
                             loads.load[static_cast<std::size_t>(c.net)]);
      const double glitch_rate = act.glitch_rate(c.net);
      rep.glitch += glitch_rate * e_per_toggle * f;
      const double watts = (total_rate - glitch_rate) * e_per_toggle * f;
      if (cell.is_macro) rep.macro += watts;
      else if (cell.sequential) rep.sequential += watts;
      else rep.combinational += watts;
    }
  }

  rep.energy_per_cycle = rep.total() / f;
  return rep;
}

PowerReport analyze_power(const Netlist& nl, const liberty::Library& lib,
                          const netlist::Activity& act,
                          const PowerOptions& opt) {
  return analyze_power(BoundDesign(nl, lib), act, opt);
}

PowerReport analyze_power(const Netlist& nl, const liberty::Library& lib,
                          const netlist::Simulator& sim,
                          const PowerOptions& opt) {
  return analyze_power(nl, lib, netlist::Activity::from_simulator(sim), opt);
}

PowerReport analyze_power(const BoundDesign& bd, const netlist::Simulator& sim,
                          const PowerOptions& opt) {
  return analyze_power(bd, netlist::Activity::from_simulator(sim), opt);
}

}  // namespace limsynth::power
