// Standard-cell library model.
//
// Cells carry logical-effort parameters (g, p) plus geometry, so both the
// fast estimator (brick compiler, synthesis gate sizer) and the golden
// switch-level simulator can be driven from the same data. Drive variants
// (X1..X16) are generated programmatically from one template per function,
// exactly like a real library's footprint-compatible drive families.
//
// All cells are lithography-pattern compatible with the memory bricks
// (see tech/pattern.hpp) — the enabling observation of the paper (§2.1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tech/pattern.hpp"
#include "tech/process.hpp"

namespace limsynth::tech {

enum class CellFunc : std::uint8_t {
  kInv,
  kBuf,
  kNand2,
  kNand3,
  kNand4,
  kNor2,
  kNor3,
  kAnd2,
  kOr2,
  kXor2,
  kXnor2,
  kMux2,     // inputs: A, B, S
  kAoi21,    // !(A*B + C)
  kOai21,    // !((A+B) * C)
  kDff,      // D flip-flop, rising edge
  kDffEn,    // D flip-flop with enable
  kLatch,    // level-sensitive, transparent high
  kClkGate,  // integrated clock gate (latch + and)
  kTie0,
  kTie1,
};

const char* cell_func_name(CellFunc func);
int cell_func_inputs(CellFunc func);
bool cell_func_sequential(CellFunc func);

/// One concrete standard cell (function template at one drive strength).
struct StdCell {
  std::string name;       // e.g. "NAND2_X2"
  CellFunc func = CellFunc::kInv;
  double drive = 1.0;     // drive-strength multiplier relative to unit cell

  // Logical-effort model (per input, in tau units).
  double logical_effort = 1.0;   // g
  double parasitic_delay = 1.0;  // p

  // Electrical (absolute, at this drive).
  double input_cap = 0.0;   // F per input pin
  double clock_cap = 0.0;   // F on clk pin (sequential only)
  double drive_res = 0.0;   // Ohm, effective output switching resistance
  double parasitic_cap = 0.0;  // F of self-load on the output
  double leakage = 0.0;     // W

  // Sequential timing (zero for combinational cells).
  double setup = 0.0;       // s
  double hold = 0.0;        // s
  double clk_to_q = 0.0;    // s (unloaded; load-dependent part via drive_res)

  // Geometry.
  double width = 0.0;       // m
  double height = 0.0;      // m (common row height)
  PatternClass pattern = PatternClass::kLogicRegular;

  int num_inputs() const { return cell_func_inputs(func); }
  bool is_sequential() const { return cell_func_sequential(func); }
  double area() const { return width * height; }

  /// First-order delay driving load C_L: R*(C_par + C_L), plus a fraction of
  /// the input slew. Used by the estimator; the liberty characterizer builds
  /// NLDM LUTs on top of the golden simulator instead.
  double delay(double load_cap, double input_slew = 0.0) const {
    return 0.69 * drive_res * (parasitic_cap + load_cap) + 0.25 * input_slew;
  }

  /// Output slew (20-80%-ish) driving load C_L.
  double output_slew(double load_cap) const {
    return 1.4 * drive_res * (parasitic_cap + load_cap);
  }

  /// Energy of one output transition pair (rise+fall) into load C_L,
  /// including internal (parasitic) energy.
  double switch_energy(double load_cap, double vdd) const {
    return (parasitic_cap + load_cap) * vdd * vdd;
  }
};

/// A generated library: all functions at drives {1, 2, 4, 8, 16}.
class StdCellLib {
 public:
  /// Builds the library for a process. Row height is 9 tracks of the
  /// process metal pitch; widths follow transistor counts.
  explicit StdCellLib(const Process& process);

  const Process& process() const { return process_; }
  const std::vector<StdCell>& cells() const { return cells_; }

  /// Smallest cell of the given function; throws if absent.
  const StdCell& smallest(CellFunc func) const;

  /// Cell of the given function whose drive is closest to (and >= when
  /// possible) the requested drive.
  const StdCell& pick(CellFunc func, double min_drive) const;

  /// Exact-name lookup; throws if absent.
  const StdCell& by_name(const std::string& name) const;

  /// Row height shared by all cells (m).
  double row_height() const { return row_height_; }

 private:
  Process process_;
  std::vector<StdCell> cells_;
  double row_height_ = 0.0;
};

}  // namespace limsynth::tech
