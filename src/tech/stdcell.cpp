#include "tech/stdcell.hpp"

#include <array>
#include <cmath>

#include "util/error.hpp"

namespace limsynth::tech {

const char* cell_func_name(CellFunc func) {
  switch (func) {
    case CellFunc::kInv: return "INV";
    case CellFunc::kBuf: return "BUF";
    case CellFunc::kNand2: return "NAND2";
    case CellFunc::kNand3: return "NAND3";
    case CellFunc::kNand4: return "NAND4";
    case CellFunc::kNor2: return "NOR2";
    case CellFunc::kNor3: return "NOR3";
    case CellFunc::kAnd2: return "AND2";
    case CellFunc::kOr2: return "OR2";
    case CellFunc::kXor2: return "XOR2";
    case CellFunc::kXnor2: return "XNOR2";
    case CellFunc::kMux2: return "MUX2";
    case CellFunc::kAoi21: return "AOI21";
    case CellFunc::kOai21: return "OAI21";
    case CellFunc::kDff: return "DFF";
    case CellFunc::kDffEn: return "DFFE";
    case CellFunc::kLatch: return "LATCH";
    case CellFunc::kClkGate: return "CKGATE";
    case CellFunc::kTie0: return "TIE0";
    case CellFunc::kTie1: return "TIE1";
  }
  return "?";
}

int cell_func_inputs(CellFunc func) {
  switch (func) {
    case CellFunc::kInv:
    case CellFunc::kBuf:
    case CellFunc::kLatch:
    case CellFunc::kDff: return 1;  // data pin; clock counted separately
    case CellFunc::kDffEn: return 2;  // D, EN
    case CellFunc::kClkGate: return 1;  // EN; clock counted separately
    case CellFunc::kNand2:
    case CellFunc::kNor2:
    case CellFunc::kAnd2:
    case CellFunc::kOr2:
    case CellFunc::kXor2:
    case CellFunc::kXnor2: return 2;
    case CellFunc::kNand3:
    case CellFunc::kNor3:
    case CellFunc::kMux2:
    case CellFunc::kAoi21:
    case CellFunc::kOai21: return 3;
    case CellFunc::kNand4: return 4;
    case CellFunc::kTie0:
    case CellFunc::kTie1: return 0;
  }
  return 0;
}

bool cell_func_sequential(CellFunc func) {
  switch (func) {
    case CellFunc::kDff:
    case CellFunc::kDffEn:
    case CellFunc::kLatch:
    case CellFunc::kClkGate:
      return true;
    default:
      return false;
  }
}

namespace {

struct FuncTemplate {
  CellFunc func;
  double g;        // logical effort per input
  double p;        // parasitic delay (tau units)
  int tracks;      // layout width in placement tracks at X1
  double leak_rel; // leakage relative to INV_X1
};

// Logical-effort values follow Sutherland/Sproull/Harris; compound and
// sequential cells use conventional library approximations.
constexpr std::array<FuncTemplate, 20> kTemplates = {{
    {CellFunc::kInv, 1.00, 1.0, 2, 1.0},
    {CellFunc::kBuf, 1.00, 2.2, 3, 1.6},
    {CellFunc::kNand2, 4.0 / 3.0, 2.0, 3, 1.5},
    {CellFunc::kNand3, 5.0 / 3.0, 3.0, 4, 2.1},
    {CellFunc::kNand4, 6.0 / 3.0, 4.0, 5, 2.7},
    {CellFunc::kNor2, 5.0 / 3.0, 2.0, 3, 1.5},
    {CellFunc::kNor3, 7.0 / 3.0, 3.0, 4, 2.1},
    {CellFunc::kAnd2, 4.0 / 3.0, 3.1, 4, 2.0},
    {CellFunc::kOr2, 5.0 / 3.0, 3.1, 4, 2.0},
    {CellFunc::kXor2, 4.0, 4.0, 6, 3.0},
    {CellFunc::kXnor2, 4.0, 4.0, 6, 3.0},
    {CellFunc::kMux2, 2.0, 3.5, 6, 3.0},
    {CellFunc::kAoi21, 5.0 / 3.0, 2.6, 4, 2.2},
    {CellFunc::kOai21, 5.0 / 3.0, 2.6, 4, 2.2},
    {CellFunc::kDff, 1.5, 4.5, 9, 4.5},
    {CellFunc::kDffEn, 1.5, 5.0, 11, 5.5},
    {CellFunc::kLatch, 1.4, 3.0, 6, 3.0},
    {CellFunc::kClkGate, 1.4, 3.5, 7, 3.5},
    {CellFunc::kTie0, 0.0, 0.0, 2, 0.3},
    {CellFunc::kTie1, 0.0, 0.0, 2, 0.3},
}};

constexpr std::array<double, 5> kDrives = {1.0, 2.0, 4.0, 8.0, 16.0};

}  // namespace

StdCellLib::StdCellLib(const Process& process) : process_(process) {
  // 9-track row height on a 0.2um placement grid -> 1.8um, typical 65nm.
  const double track = 0.2e-6;
  row_height_ = 9.0 * track;
  const double c0 = process.c_unit();
  const double r0 = process.r_unit();
  const double inv_leak = process.i_leak * process.wn_unit * (1.0 + process.beta) *
                          process.vdd / (1.0 + process.beta);

  cells_.reserve(kTemplates.size() * kDrives.size());
  for (const auto& t : kTemplates) {
    for (double d : kDrives) {
      if ((t.func == CellFunc::kTie0 || t.func == CellFunc::kTie1) && d > 1.0)
        continue;
      StdCell c;
      c.func = t.func;
      c.drive = d;
      c.name = std::string(cell_func_name(t.func)) + "_X" +
               std::to_string(static_cast<int>(d));
      c.logical_effort = t.g;
      c.parasitic_delay = t.p;
      c.input_cap = t.g * d * c0;
      c.drive_res = (d > 0) ? r0 / d : 0.0;
      c.parasitic_cap = t.p * d * c0 * (process.c_diff / process.c_gate);
      c.leakage = t.leak_rel * d * inv_leak;
      c.width = static_cast<double>(t.tracks) * track * (0.5 + 0.5 * d);
      c.height = row_height_;
      c.pattern = PatternClass::kLogicRegular;
      if (c.is_sequential()) {
        c.clock_cap = 2.0 * c0 * std::sqrt(d);
        c.setup = 2.5 * process.tau();
        c.hold = 0.5 * process.tau();
        c.clk_to_q = t.p * process.tau();
      }
      cells_.push_back(c);
    }
  }
}

const StdCell& StdCellLib::smallest(CellFunc func) const {
  const StdCell* best = nullptr;
  for (const auto& c : cells_) {
    if (c.func != func) continue;
    if (!best || c.drive < best->drive) best = &c;
  }
  LIMS_CHECK_MSG(best != nullptr,
                 "no cell with function " << cell_func_name(func));
  return *best;
}

const StdCell& StdCellLib::pick(CellFunc func, double min_drive) const {
  const StdCell* best = nullptr;       // smallest drive >= min_drive
  const StdCell* largest = nullptr;    // fallback: largest available
  for (const auto& c : cells_) {
    if (c.func != func) continue;
    if (!largest || c.drive > largest->drive) largest = &c;
    if (c.drive >= min_drive && (!best || c.drive < best->drive)) best = &c;
  }
  LIMS_CHECK_MSG(largest != nullptr,
                 "no cell with function " << cell_func_name(func));
  return best ? *best : *largest;
}

const StdCell& StdCellLib::by_name(const std::string& name) const {
  for (const auto& c : cells_) {
    if (c.name == name) return c;
  }
  throw Error("no standard cell named " + name);
}

}  // namespace limsynth::tech
