// Technology (process) description.
//
// The paper's flow is built on a commercial GlobalFoundries 65nm PDK that we
// cannot redistribute. This module provides a parametric 65nm-class process
// model: every constant a brick compiler, logical-effort sizer, RC extractor,
// or power model needs, in one struct. The nominal values are calibrated so
// that the brick estimator reproduces the paper's published tool numbers
// (Table 1) — see DESIGN.md §6. Corners and Monte-Carlo sampling substitute
// for fabricated-chip spread in Fig. 4b.
#pragma once

#include <string>

#include "util/rng.hpp"

namespace limsynth::tech {

enum class Corner {
  kTypical,  // TT, nominal Vdd, 25C
  kFast,     // FF, +Vdd
  kSlow,     // SS, -Vdd
};

const char* corner_name(Corner corner);

/// All electrical/geometry constants of the target technology, in SI units
/// (Ohm, Farad, Volt, meter, Watt). Device R/C constants are normalized per
/// meter of transistor width, so r_nmos / width(m) gives the effective
/// switching resistance of a device.
struct Process {
  std::string name = "g65lp";
  Corner corner = Corner::kTypical;

  // Supply / environment.
  double vdd = 1.2;      // V
  double temperature = 25.0;  // Celsius

  // Device constants (per meter of gate width).
  double r_nmos = 1.7e3 * 1e-6;    // Ohm * m : eff. switching resistance * W
  double r_pmos = 3.4e3 * 1e-6;    // Ohm * m
  double c_gate = 1.25e-15 / 1e-6; // F / m of gate width
  double c_diff = 0.80e-15 / 1e-6; // F / m : drain junction + overlap
  double i_leak = 8e-9 / 1e-6;     // A / m of device width (subthreshold, TT)

  // Minimum-size unit inverter geometry (defines the logical-effort unit).
  double wn_unit = 0.4e-6;  // m, NMOS width of the unit inverter
  double beta = 2.0;        // PMOS/NMOS width ratio

  // Interconnect (intermediate metal, typical 65nm).
  double r_wire = 1.6 / 1e-6;       // Ohm / m (1.6 Ohm per um)
  double c_wire = 0.20e-15 / 1e-6;  // F / m (0.20 fF per um)

  // Sensing: fraction of bitline swing required before the (skewed) local
  // sense inverter fires.
  double sense_swing = 0.55;

  // Clocking overhead inside a brick control block (pulse generation and
  // local clock buffering), expressed as a delay adder and an energy adder.
  // Calibrated against the paper's 65nm brick data (Table 1).
  double t_control = 70e-12;    // s, clock -> wordline-enable (pulse gen)
  double e_control = 0.118e-12; // J per accessed brick per cycle (pulse gen)

  // Manufacturing defectivity: Poisson point-defect density over die
  // area, with negative-binomial clustering (the classic wafer-yield
  // model Y = (1 + A*D0/alpha)^-alpha). 0.2 defects/cm^2 is a mature
  // 65nm line; fault/defects.hpp samples discrete defects from these.
  double defect_density_per_m2 = 0.2 * 1e4;  // D0: 0.2 / cm^2
  double defect_cluster_alpha = 2.0;         // clustering shape (mean-1 Gamma)

  // Soft-error environment (terrestrial, sea level): raw single-event
  // upset rates before any architectural derating. SRAM bitcells at 65nm
  // sit around 1e3 FIT/Mbit; flip-flops are individually harder but each
  // latch still collects ~1e-3 FIT; combinational SETs only matter when a
  // pulse is wide enough to out-run inertial filtering AND lands inside a
  // capture window, so the raw per-gate rate is small. An SEU campaign
  // (src/seu) multiplies these by its measured per-class derating factors
  // (AVF) to produce the effective FIT of a design.
  double seu_fit_per_mbit = 1.0e3;   // FIT per Mbit of SRAM/CAM storage
  double seu_fit_per_flop = 1.0e-3;  // FIT per sequential element
  double set_fit_per_gate = 1.0e-4;  // FIT per combinational gate (capturable pulses)

  // Clock-network capacitance inside a brick control block (precharge
  // clocking, output latch clocks, pulse-generator internals): fixed part
  // plus per-column and per-row wire/gate load. This fixed per-brick cost
  // is what makes small bricks energy-expensive per access — the trend the
  // paper's Fig. 4c design-space exploration exposes.
  double c_clknet_base = 28e-15;      // F
  double c_clknet_per_bit = 1.2e-15;  // F
  double c_clknet_per_word = 0.5e-15; // F

  // Derived helpers -------------------------------------------------------

  /// Input capacitance of the unit inverter (the logical-effort C-unit).
  double c_unit() const { return (1.0 + beta) * wn_unit * c_gate; }

  /// Output (drive) resistance of the unit inverter pulling down.
  double r_unit() const { return r_nmos / wn_unit; }

  /// The logical-effort time unit tau = R_unit * C_unit.
  double tau() const { return r_unit() * c_unit(); }

  /// FO4 inverter delay (~5 tau), a common sanity metric (~25 ps at 65nm).
  double fo4() const { return 5.0 * tau(); }

  /// Returns a copy of this process shifted to the given corner.
  /// Fast: -12% R, -4% C, +8% Vdd. Slow: +14% R, +4% C, -8% Vdd.
  Process at_corner(Corner corner) const;

  /// Returns a Monte-Carlo "fabricated chip" sample of this process:
  /// a global lot shift plus per-chip gaussian variation on R (sigma 4%),
  /// C (sigma 1.5%), and leakage (lognormal-ish, sigma 20%).
  Process monte_carlo_chip(Rng& rng) const;
};

/// The calibrated nominal 65nm-class process used throughout the
/// reproduction ("GF 65nm LP" stand-in).
Process default_process();

}  // namespace limsynth::tech
