// Restrictive-patterning model (paper §2.1).
//
// In sub-20nm nodes, layouts must be assembled from a small set of
// pre-characterized lithography patterns; the paper's key enabler is that
// logic built from the same pattern constructs as bitcells can abut memory
// without lithographic hotspots. We model this as pattern classes with an
// explicit pairwise abutment-compatibility relation, and the layout module
// checks every generated brick/block against it. A "conventional" logic
// class is included to reproduce the Fig. 1 observation that unrestricted
// standard cells are NOT printable next to bitcells.
#pragma once

#include <cstdint>
#include <string>

namespace limsynth::tech {

enum class PatternClass : std::uint8_t {
  kBitcell,        // SRAM/CAM bitcell array patterns
  kLogicRegular,   // pattern-construct-compliant logic (this methodology)
  kLogicLegacy,    // conventional 2D layout logic (pre-restrictive style)
  kPeriphery,      // pitch-matched brick leaf cells (WL driver, sense, ctrl)
  kFill,           // dummy fill / decap
};

const char* pattern_class_name(PatternClass pc);

/// True when two pattern classes may abut without creating a lithographic
/// hotspot. Symmetric. kLogicLegacy next to kBitcell is the one forbidden
/// combination (Fig. 1b of the paper).
bool patterns_compatible(PatternClass a, PatternClass b);

/// Result of a pattern legality scan.
struct PatternViolation {
  PatternClass a = PatternClass::kFill;
  PatternClass b = PatternClass::kFill;
  // Index of the offending abutment in the order the checker visited it;
  // the layout checker fills in cell names.
  std::string where;
};

}  // namespace limsynth::tech
