// Bitcell descriptors.
//
// A memory brick is tiled from one bitcell type. The brick compiler only
// needs a bitcell's electrical footprint (bitline/wordline/matchline load,
// read-stack strength) and geometry (pitch); any cell with these properties
// can form a brick — the paper lists 6T, 8T, CAM, eDRAM and multi-ported
// cells. Values are 65nm-class, calibrated per DESIGN.md §6.
#pragma once

#include <cstdint>
#include <string>

#include "tech/process.hpp"

namespace limsynth::tech {

enum class BitcellKind : std::uint8_t {
  kSram6T,    // single-port, differential read
  kSram8T,    // 1R1W: decoupled single-ended read port
  kCamNor10T, // 8T storage + NOR match stack on a matchline
  kEdram1T1C, // gain-cell style embedded DRAM (refresh required)
};

const char* bitcell_kind_name(BitcellKind kind);

struct Bitcell {
  BitcellKind kind = BitcellKind::kSram8T;
  std::string name;

  // Geometry. Wordlines run along `width` (one column per bit), bitlines
  // along `height` (one row per word). All bricks of a design must share
  // `height` so leaf cells pitch-match (checked by the layout module).
  double width = 0.0;   // m
  double height = 0.0;  // m

  // Per-cell loads contributed to the shared wires.
  double c_bitline = 0.0;   // F on (read) bitline per cell
  double c_wordline = 0.0;  // F on wordline per cell
  double c_matchline = 0.0; // F on matchline per cell (CAM only)
  double c_searchline = 0.0;// F on search line per cell (CAM only)

  // Drive strengths.
  double r_read = 0.0;   // Ohm, read pull-down stack
  double r_write = 0.0;  // Ohm, required write-driver strength reference
  double r_match = 0.0;  // Ohm, matchline pull-down per mismatching cell

  double leakage = 0.0;  // W per cell
  int transistors = 0;
  bool has_read_port = false;  // decoupled read (8T/CAM): non-destructive

  double area() const { return width * height; }
};

/// Calibrated 65nm bitcells. All share the same cell height (row pitch)
/// so SRAM and CAM bricks can abut in one LiM block.
Bitcell make_bitcell(BitcellKind kind, const Process& process);

}  // namespace limsynth::tech
