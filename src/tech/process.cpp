#include "tech/process.hpp"

#include "util/error.hpp"

namespace limsynth::tech {

const char* corner_name(Corner corner) {
  switch (corner) {
    case Corner::kTypical: return "TT";
    case Corner::kFast: return "FF";
    case Corner::kSlow: return "SS";
  }
  return "??";
}

Process Process::at_corner(Corner target) const {
  Process p = *this;
  p.corner = target;
  switch (target) {
    case Corner::kTypical:
      break;
    case Corner::kFast:
      p.r_nmos *= 0.88;
      p.r_pmos *= 0.88;
      p.c_gate *= 0.96;
      p.c_diff *= 0.96;
      p.vdd *= 1.08;
      p.i_leak *= 3.0;
      break;
    case Corner::kSlow:
      p.r_nmos *= 1.14;
      p.r_pmos *= 1.14;
      p.c_gate *= 1.04;
      p.c_diff *= 1.04;
      p.vdd *= 0.92;
      p.i_leak *= 0.4;
      break;
  }
  return p;
}

Process Process::monte_carlo_chip(Rng& rng) const {
  Process p = *this;
  // Lot-level shift (shared by both device types) plus chip-level spread.
  const double lot_r = rng.gaussian(1.0, 0.03);
  p.r_nmos *= lot_r * rng.gaussian(1.0, 0.04);
  p.r_pmos *= lot_r * rng.gaussian(1.0, 0.04);
  const double lot_c = rng.gaussian(1.0, 0.01);
  p.c_gate *= lot_c * rng.gaussian(1.0, 0.015);
  p.c_diff *= lot_c * rng.gaussian(1.0, 0.015);
  p.c_wire *= rng.gaussian(1.0, 0.02);
  p.i_leak *= std::exp(rng.gaussian(0.0, 0.20));
  // Keep the sample physical.
  LIMS_CHECK(p.r_nmos > 0 && p.c_gate > 0);
  return p;
}

Process default_process() {
  Process p;
  // Wire resistance: intermediate metal at 65nm, ~1.6 Ohm/um.
  p.r_wire = 1.6 / 1e-6;  // Ohm / m
  return p;
}

}  // namespace limsynth::tech
