#include "tech/bitcell.hpp"

#include "util/error.hpp"

namespace limsynth::tech {

const char* bitcell_kind_name(BitcellKind kind) {
  switch (kind) {
    case BitcellKind::kSram6T: return "sram6t";
    case BitcellKind::kSram8T: return "sram8t";
    case BitcellKind::kCamNor10T: return "cam10t";
    case BitcellKind::kEdram1T1C: return "edram";
  }
  return "?";
}

Bitcell make_bitcell(BitcellKind kind, const Process& process) {
  // Common 65nm-class row pitch for all bitcells (pitch-match requirement).
  constexpr double kCellHeight = 0.52e-6;

  Bitcell b;
  b.kind = kind;
  b.name = bitcell_kind_name(kind);
  b.height = kCellHeight;

  // Device-width-derived loads. The read stack of the 8T cell is two series
  // NMOS of ~0.3um; CAM match stack is wider for matchline speed.
  const double c_g = process.c_gate;
  const double c_d = process.c_diff;
  const double leak_unit = process.i_leak * process.vdd;

  switch (kind) {
    case BitcellKind::kSram6T:
      b.width = 1.10e-6;  // ~0.57 um^2, typical published 65nm 6T
      b.c_bitline = c_d * 0.30e-6 + process.c_wire * kCellHeight;
      b.c_wordline = 2.0 * c_g * 0.22e-6 + process.c_wire * b.width;
      b.r_read = 2.0 * process.r_nmos / 0.30e-6;  // access + driver in series
      b.r_write = process.r_nmos / 0.22e-6;
      b.leakage = leak_unit * 1.4e-6;
      b.transistors = 6;
      b.has_read_port = false;
      break;
    case BitcellKind::kSram8T:
      b.width = 1.54e-6;  // ~0.80 um^2, 1R1W 8T
      b.c_bitline = c_d * 0.34e-6 + process.c_wire * kCellHeight;
      b.c_wordline = 2.0 * c_g * 0.24e-6 + process.c_wire * b.width;
      b.r_read = 2.0 * process.r_nmos / 0.34e-6;  // 2-stack read port
      b.r_write = process.r_nmos / 0.22e-6;
      b.leakage = leak_unit * 1.8e-6;
      b.transistors = 8;
      b.has_read_port = true;
      break;
    case BitcellKind::kCamNor10T:
      // Paper §5: CAM brick area is 83% bigger than the SRAM brick for the
      // same 16x10 array; the cell drives most of that ratio.
      b.width = 2.88e-6;  // ~1.50 um^2 NOR-style CAM cell
      // The read port shares diffusion with the match stack: heavier RBL
      // and a weaker stack than the plain 8T (paper: CAM brick ~26% slower
      // for the same array size).
      b.c_bitline = c_d * 0.62e-6 + process.c_wire * kCellHeight;
      b.c_wordline = 2.0 * c_g * 0.24e-6 + process.c_wire * b.width;
      b.c_matchline = c_d * 0.5e-6 + process.c_wire * b.width;
      b.c_searchline = c_g * 1.0e-6 + process.c_wire * kCellHeight;
      b.r_read = 2.0 * process.r_nmos / 0.30e-6;
      b.r_write = process.r_nmos / 0.22e-6;
      b.r_match = 2.0 * process.r_nmos / 0.50e-6;
      b.leakage = leak_unit * 2.6e-6;
      b.transistors = 10;
      b.has_read_port = true;
      break;
    case BitcellKind::kEdram1T1C:
      b.width = 0.62e-6;  // dense gain cell
      b.c_bitline = c_d * 0.20e-6 + process.c_wire * kCellHeight;
      b.c_wordline = c_g * 0.20e-6 + process.c_wire * b.width;
      b.r_read = 3.0 * process.r_nmos / 0.20e-6;
      b.r_write = process.r_nmos / 0.20e-6;
      b.leakage = leak_unit * 0.3e-6;
      b.transistors = 2;
      b.has_read_port = true;
      break;
  }
  LIMS_CHECK(b.width > 0 && b.c_bitline > 0);
  return b;
}

}  // namespace limsynth::tech
