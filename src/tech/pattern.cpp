#include "tech/pattern.hpp"

namespace limsynth::tech {

const char* pattern_class_name(PatternClass pc) {
  switch (pc) {
    case PatternClass::kBitcell: return "bitcell";
    case PatternClass::kLogicRegular: return "logic-regular";
    case PatternClass::kLogicLegacy: return "logic-legacy";
    case PatternClass::kPeriphery: return "periphery";
    case PatternClass::kFill: return "fill";
  }
  return "?";
}

bool patterns_compatible(PatternClass a, PatternClass b) {
  // Fill abuts anything; regular logic / periphery / bitcells are mutually
  // compatible by construction (common pattern set). Legacy 2D logic next
  // to a bitcell array creates hotspots (paper Fig. 1b); legacy logic next
  // to pitch-matched periphery is equally illegal because the periphery
  // shares the bitcell pattern set.
  auto legacy = [](PatternClass p) { return p == PatternClass::kLogicLegacy; };
  auto memory_like = [](PatternClass p) {
    return p == PatternClass::kBitcell || p == PatternClass::kPeriphery;
  };
  if ((legacy(a) && memory_like(b)) || (legacy(b) && memory_like(a)))
    return false;
  return true;
}

}  // namespace limsynth::tech
